(* Client side of [wfc request]: connect (with retry, so cram scripts can
   race the daemon startup), ship a batch of text-mode lines over one
   connection, collect the response blocks, and return them sorted by
   request id — pipelined responses may complete out of order on the
   server's workers, sorting makes the output deterministic.

   In binary mode the same lines are parsed locally, encoded as frames and
   the decoded responses rendered with the same [Protocol.render_response],
   so text and binary transcripts are byte-comparable — which is exactly
   how the cram suite pins codec/daemon agreement. *)

module Pr = Protocol

type reply = { rid : int64; body : (string list, string) result }
(* [Error] carries "CODE MESSAGE" from an error response. *)

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

(* Retry schedule: capped exponential backoff, deterministic (no jitter —
   clients here race one local daemon's startup, not a thundering herd).
   Sleeps are 50 ms, 100 ms, 200 ms, 400 ms, then 800 ms flat until the
   [retry] budget is spent; attempts always total at most [retry] seconds
   of sleeping, the last sleep truncated to whatever budget remains. *)
let backoff_first = 0.05
let backoff_cap = 0.8

let connect ?(retry = 5.) target =
  let addr =
    match target with
    | Server.Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
    | Server.Unix_sock path -> Unix.ADDR_UNIX path
  in
  let rec go ~sleep left =
    let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _)
      when left > 0. ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let nap = Float.min sleep left in
        Unix.sleepf nap;
        go ~sleep:(Float.min backoff_cap (2. *. sleep)) (left -. nap)
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error
          (Printf.sprintf "cannot connect to %s: %s"
             (match target with
             | Server.Tcp p -> Printf.sprintf "127.0.0.1:%d" p
             | Server.Unix_sock p -> p)
             (Unix.error_message e))
  in
  go ~sleep:backoff_first retry

let by_rid a b = Int64.compare a.rid b.rid

(* ---- text transport ---------------------------------------------------- *)

type linereader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let read_line lr =
  let b = Buffer.create 80 in
  let rec go () =
    if lr.pos >= lr.len then begin
      lr.len <- Unix.read lr.fd lr.buf 0 (Bytes.length lr.buf);
      lr.pos <- 0
    end;
    if lr.len = 0 then
      if Buffer.length b = 0 then None else Some (Buffer.contents b)
    else
      match Bytes.get lr.buf lr.pos with
      | '\n' ->
          lr.pos <- lr.pos + 1;
          Some (Buffer.contents b)
      | '\r' ->
          lr.pos <- lr.pos + 1;
          go ()
      | c ->
          lr.pos <- lr.pos + 1;
          Buffer.add_char b c;
          go ()
  in
  go ()

let split2 s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let text_exchange fd lines =
  write_all fd (String.concat "" (List.map (fun l -> l ^ "\n") lines));
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let lr = { fd; buf = Bytes.create 8192; pos = 0; len = 0 } in
  (* a well-formed body ends with the "." terminator line; EOF before it
     means the connection died mid-response — that must surface as a
     structured error, never as a silently shortened Ok body *)
  let rec read_body acc =
    match read_line lr with
    | None -> Error ()
    | Some "." -> Ok (List.rev acc)
    | Some l -> read_body (l :: acc)
  in
  let rec go acc =
    match read_line lr with
    | None -> List.rev acc
    | Some header -> (
        match split2 header with
        | "ok", rest ->
            let rid, _ = split2 rest in
            let rid = Option.value ~default:0L (Int64.of_string_opt rid) in
            let body =
              match read_body [] with
              | Ok body -> Ok body
              | Error () -> Error "truncated response (connection lost mid-body)"
            in
            go ({ rid; body } :: acc)
        | "error", rest ->
            let rid, detail = split2 rest in
            let rid = Option.value ~default:0L (Int64.of_string_opt rid) in
            go ({ rid; body = Error detail } :: acc)
        | _ ->
            (* not a header we know: surface it rather than hide it *)
            go ({ rid = 0L; body = Error ("garbled response: " ^ header) } :: acc))
  in
  List.sort by_rid (go [])

(* ---- binary transport -------------------------------------------------- *)

let binary_exchange fd lines =
  (* parse locally so encode/decode gets exercised end to end *)
  let parsed =
    List.mapi
      (fun i line -> (Int64.of_int (i + 1), Pr.request_of_line line))
      lines
  in
  let local, sendable =
    List.partition_map
      (fun (rid, r) ->
        match r with
        | Error msg ->
            Left { rid; body = Error ("bad-request " ^ msg) }
        | Ok req -> Right (rid, req))
      parsed
  in
  List.iter
    (fun (rid, req) ->
      write_all fd (Codec.frame (Codec.encode_request ~id:rid req)))
    sendable;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let read buf off len = Unix.read fd buf off len in
  let rec go acc =
    match Codec.read_frame read with
    | Ok None -> List.rev acc
    | Error msg -> List.rev ({ rid = 0L; body = Error ("framing " ^ msg) } :: acc)
    | Ok (Some payload) -> (
        match Codec.decode_response payload with
        | Error msg ->
            go ({ rid = 0L; body = Error ("decode " ^ msg) } :: acc)
        | Ok (rid, Pr.Error { code; message }) ->
            go
              ({ rid; body = Error (Pr.error_code_name code ^ " " ^ message) }
              :: acc)
        | Ok (rid, resp) ->
            go ({ rid; body = Ok (Pr.render_response resp) } :: acc))
  in
  List.sort by_rid (go [] @ local)

let exchange ?(binary = false) fd lines =
  if binary then binary_exchange fd lines else text_exchange fd lines
