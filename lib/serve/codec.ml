(* Binary wire format of [wfc serve].

   Frame  = u32-BE payload length, then the payload (cap {!max_frame}).
   Payload = u8 version, i64 request id, u8 tag, tag-specific body.

   A connection speaks binary iff its first byte is 0x00: payload lengths
   are capped well under 2^24, so a frame header always starts with a zero
   byte, while every text-mode command starts with a letter.

   The decode side NEVER raises — arbitrary bytes yield [Error _] (the same
   contract as [Wfc_io.Workflow_io] sniffing, and what the fuzz battery in
   test_serve pins). Every length and count is validated against the bytes
   actually remaining, so hostile counts cannot allocate or loop. *)

module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module Lin = Wfc_dag.Linearize
module H = Wfc_core.Heuristics
module E = Wfc_core.Eval_engine
open Protocol

let version = 1
let default_max_frame = 16 * 1024 * 1024

exception Fail of string

let fail fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

(* ---- writer ----------------------------------------------------------- *)

let w_u8 b v = Buffer.add_uint8 b (v land 0xff)
let w_i64 b v = Buffer.add_int64_be b v
let w_int b v = w_i64 b (Int64.of_int v)
let w_f64 b v = w_i64 b (Int64.bits_of_float v)

let w_u32 b v =
  if v < 0 || v > 0xffff_ffff then fail "length out of range";
  Buffer.add_int32_be b (Int32.of_int v)

let w_string b s =
  w_u32 b (String.length s);
  Buffer.add_string b s

let w_opt w b = function
  | None -> w_u8 b 0
  | Some v ->
      w_u8 b 1;
      w b v

let w_list w b xs =
  w_u32 b (List.length xs);
  List.iter (w b) xs

(* ---- reader ----------------------------------------------------------- *)

type rd = { s : string; mutable pos : int }

let remaining r = String.length r.s - r.pos
let need r n = if n < 0 || remaining r < n then fail "truncated payload"

let r_u8 r =
  need r 1;
  let v = Char.code r.s.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_i64 r =
  need r 8;
  let v = String.get_int64_be r.s r.pos in
  r.pos <- r.pos + 8;
  v

let r_int r =
  let v = r_i64 r in
  if v < Int64.of_int min_int || v > Int64.of_int max_int then
    fail "integer out of range";
  Int64.to_int v

let r_f64 r = Int64.float_of_bits (r_i64 r)

let r_u32 r =
  need r 4;
  let v = Int32.to_int (String.get_int32_be r.s r.pos) land 0xffff_ffff in
  r.pos <- r.pos + 4;
  v

let r_string r =
  let n = r_u32 r in
  need r n;
  let s = String.sub r.s r.pos n in
  r.pos <- r.pos + n;
  s

let r_opt f r =
  match r_u8 r with
  | 0 -> None
  | 1 -> Some (f r)
  | b -> fail "bad option byte %d" b

let r_list f r =
  let n = r_u32 r in
  (* every element costs at least one byte, so a count beyond the remaining
     bytes is corrupt — reject before allocating *)
  if n > remaining r then fail "list count %d exceeds payload" n;
  List.init n (fun _ -> f r)

(* ---- enums ------------------------------------------------------------ *)

let enum_w name to_s b v = ignore name; w_string b (to_s v)

let enum_r name of_s r =
  let s = r_string r in
  match of_s s with Some v -> v | None -> fail "unknown %s %S" name s

let w_family b v = enum_w "family" P.family_name b v
let r_family r = enum_r "workflow family" P.family_of_string r
let w_lin b v = enum_w "lin" Lin.strategy_name b v
let r_lin r = enum_r "linearization" Lin.strategy_of_string r
let w_ckpt b v = enum_w "ckpt" H.ckpt_strategy_name b v
let r_ckpt r = enum_r "checkpoint strategy" H.ckpt_strategy_of_string r
let w_backend b v = enum_w "engine" E.backend_name b v
let r_backend r = enum_r "engine" E.backend_of_string r

let w_cost b = function
  | CM.Proportional f ->
      w_u8 b 1;
      w_f64 b f
  | CM.Constant f ->
      w_u8 b 2;
      w_f64 b f

let r_cost r =
  match r_u8 r with
  | 1 -> CM.Proportional (r_f64 r)
  | 2 -> CM.Constant (r_f64 r)
  | t -> fail "unknown cost tag %d" t

let w_error_code b c = w_string b (error_code_name c)
let r_error_code r = enum_r "error code" error_code_of_string r

(* ---- request body ----------------------------------------------------- *)

let w_spec b = function
  | Generated { family; n; seed; cost } ->
      w_u8 b 1;
      w_family b family;
      w_int b n;
      w_int b seed;
      w_cost b cost
  | Inline { name; text; cost } ->
      w_u8 b 2;
      w_string b name;
      w_string b text;
      w_cost b cost
  | File { path; cost } ->
      w_u8 b 3;
      w_string b path;
      w_cost b cost

let r_spec r =
  match r_u8 r with
  | 1 ->
      let family = r_family r in
      let n = r_int r in
      let seed = r_int r in
      let cost = r_cost r in
      Generated { family; n; seed; cost }
  | 2 ->
      let name = r_string r in
      let text = r_string r in
      let cost = r_cost r in
      Inline { name; text; cost }
  | 3 ->
      let path = r_string r in
      let cost = r_cost r in
      File { path; cost }
  | t -> fail "unknown workflow tag %d" t

let w_solve b p =
  w_spec b p.workflow;
  w_f64 b p.mtbf;
  w_f64 b p.downtime;
  w_lin b p.lin;
  w_ckpt b p.ckpt;
  w_int b p.grid;
  w_backend b p.backend;
  w_opt w_f64 b p.deadline

let r_solve r =
  let workflow = r_spec r in
  let mtbf = r_f64 r in
  let downtime = r_f64 r in
  let lin = r_lin r in
  let ckpt = r_ckpt r in
  let grid = r_int r in
  let backend = r_backend r in
  let deadline = r_opt r_f64 r in
  { workflow; mtbf; downtime; lin; ckpt; grid; backend; deadline }

let w_request b = function
  | Ping -> w_u8 b 1
  | Solve p ->
      w_u8 b 2;
      w_solve b p
  | Simulate { params; runs; mcseed } ->
      w_u8 b 3;
      w_solve b params;
      w_int b runs;
      w_int b mcseed
  | Adapt { params; true_mtbf; traces; mcseed } ->
      w_u8 b 4;
      w_solve b params;
      w_f64 b true_mtbf;
      w_int b traces;
      w_int b mcseed
  | Corpus { dir; ratios; grid; backend } ->
      w_u8 b 5;
      w_string b dir;
      w_list w_f64 b ratios;
      w_int b grid;
      w_backend b backend
  | Stats -> w_u8 b 6
  | Sleep s ->
      w_u8 b 7;
      w_f64 b s
  | Shutdown -> w_u8 b 8

let r_request r =
  match r_u8 r with
  | 1 -> Ping
  | 2 -> Solve (r_solve r)
  | 3 ->
      let params = r_solve r in
      let runs = r_int r in
      let mcseed = r_int r in
      Simulate { params; runs; mcseed }
  | 4 ->
      let params = r_solve r in
      let true_mtbf = r_f64 r in
      let traces = r_int r in
      let mcseed = r_int r in
      Adapt { params; true_mtbf; traces; mcseed }
  | 5 ->
      let dir = r_string r in
      let ratios = r_list r_f64 r in
      let grid = r_int r in
      let backend = r_backend r in
      Corpus { dir; ratios; grid; backend }
  | 6 -> Stats
  | 7 -> Sleep (r_f64 r)
  | 8 -> Shutdown
  | t -> fail "unknown request tag %d" t

(* ---- response body ---------------------------------------------------- *)

let w_solved b s =
  w_string b s.source;
  w_int b s.n_tasks;
  w_string b s.heuristic;
  w_string b s.tier;
  w_f64 b s.makespan;
  w_f64 b s.ratio;
  w_int b s.n_ckpt;
  w_list w_int b s.ckpt_tasks;
  w_int b s.evaluations

let r_solved r =
  let source = r_string r in
  let n_tasks = r_int r in
  let heuristic = r_string r in
  let tier = r_string r in
  let makespan = r_f64 r in
  let ratio = r_f64 r in
  let n_ckpt = r_int r in
  let ckpt_tasks = r_list r_int r in
  let evaluations = r_int r in
  {
    source; n_tasks; heuristic; tier; makespan; ratio; n_ckpt; ckpt_tasks;
    evaluations;
  }

let w_policy b (name, mean, cvar, worst) =
  w_string b name;
  w_f64 b mean;
  w_f64 b cvar;
  w_f64 b worst

let r_policy r =
  let name = r_string r in
  let mean = r_f64 r in
  let cvar = r_f64 r in
  let worst = r_f64 r in
  (name, mean, cvar, worst)

let w_row b (k, v) =
  w_string b k;
  w_string b v

let r_row r =
  let k = r_string r in
  let v = r_string r in
  (k, v)

let w_response b = function
  | Pong -> w_u8 b 1
  | Solved s ->
      w_u8 b 2;
      w_solved b s
  | Simulated s ->
      w_u8 b 3;
      w_solved b s.solved;
      w_int b s.runs;
      w_f64 b s.sim_mean;
      w_f64 b s.ci_lo;
      w_f64 b s.ci_hi;
      w_f64 b s.failures_mean
  | Adapted a ->
      w_u8 b 4;
      w_string b a.asource;
      w_string b a.winner;
      w_list w_policy b a.policies
  | Corpus_report { instances; scenarios; text } ->
      w_u8 b 5;
      w_int b instances;
      w_int b scenarios;
      w_string b text
  | Stats_report rows ->
      w_u8 b 6;
      w_list w_row b rows
  | Slept s ->
      w_u8 b 7;
      w_f64 b s
  | Bye -> w_u8 b 8
  | Error { code; message } ->
      w_u8 b 9;
      w_error_code b code;
      w_string b message

let r_response r =
  match r_u8 r with
  | 1 -> Pong
  | 2 -> Solved (r_solved r)
  | 3 ->
      let solved = r_solved r in
      let runs = r_int r in
      let sim_mean = r_f64 r in
      let ci_lo = r_f64 r in
      let ci_hi = r_f64 r in
      let failures_mean = r_f64 r in
      Simulated { solved; runs; sim_mean; ci_lo; ci_hi; failures_mean }
  | 4 ->
      let asource = r_string r in
      let winner = r_string r in
      let policies = r_list r_policy r in
      Adapted { asource; winner; policies }
  | 5 ->
      let instances = r_int r in
      let scenarios = r_int r in
      let text = r_string r in
      Corpus_report { instances; scenarios; text }
  | 6 -> Stats_report (r_list r_row r)
  | 7 -> Slept (r_f64 r)
  | 8 -> Bye
  | 9 ->
      let code = r_error_code r in
      let message = r_string r in
      Error { code; message }
  | t -> fail "unknown response tag %d" t

(* ---- payloads --------------------------------------------------------- *)

let encode header body =
  let b = Buffer.create 256 in
  w_u8 b version;
  w_i64 b header;
  body b;
  Buffer.contents b

let encode_request ~id req = encode id (fun b -> w_request b req)
let encode_response ~id resp = encode id (fun b -> w_response b resp)

let decode body s =
  try
    let r = { s; pos = 0 } in
    let v = r_u8 r in
    if v <> version then fail "unsupported protocol version %d" v;
    let id = r_i64 r in
    let x = body r in
    if remaining r <> 0 then fail "%d trailing bytes" (remaining r);
    Ok (id, x)
  with
  | Fail m -> Stdlib.Error m
  | exn -> Stdlib.Error (Printexc.to_string exn)

let decode_request s = decode r_request s
let decode_response s = decode r_response s

(* ---- framing ---------------------------------------------------------- *)

let frame payload =
  let n = String.length payload in
  let b = Buffer.create (n + 4) in
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b payload;
  Buffer.contents b

let read_frame ?(max_frame = default_max_frame) read =
  (* [read buf off len] follows the Unix.read contract: 0 means EOF. EOF on
     the very first header byte is a clean end of stream; anywhere else the
     frame is truncated. Read errors count as truncation too. *)
  let fill buf len ~eof_ok =
    let rec go off =
      if off >= len then `Done
      else
        match read buf off (len - off) with
        | 0 -> if eof_ok && off = 0 then `Eof else `Short
        | n when n > 0 && n <= len - off -> go (off + n)
        | _ -> `Short
        | exception _ -> `Short
    in
    go 0
  in
  let hdr = Bytes.create 4 in
  match fill hdr 4 ~eof_ok:true with
  | `Eof -> Ok None
  | `Short -> Stdlib.Error "truncated frame header"
  | `Done -> (
      let len = Int32.to_int (Bytes.get_int32_be hdr 0) land 0xffff_ffff in
      if len > max_frame then
        Stdlib.Error (Printf.sprintf "frame too large (%d bytes, cap %d)" len max_frame)
      else
        let payload = Bytes.create len in
        match fill payload len ~eof_ok:false with
        | `Done -> Ok (Some (Bytes.unsafe_to_string payload))
        | `Eof | `Short -> Stdlib.Error "truncated frame payload")

let reader_of_string s =
  let pos = ref 0 in
  fun buf off len ->
    let n = Int.min len (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n
