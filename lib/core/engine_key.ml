(* Identity of a warm evaluation engine.

   An {!Eval_engine.handle} is bound to a (backend, model, dag, order)
   quadruple; two requests may share a warm engine exactly when those four
   agree. The key captures each component as stable 64-bit digests — the
   DAG through {!Wfc_dag.Dag.fingerprint}, the order through the same FNV-1a
   fold, the model through the raw IEEE bits of lambda and downtime (bitwise
   equality, the only equality that preserves bit-identical evaluation) —
   so keys are cheap to hash, compare and print, and never retain the DAG
   itself. *)

type t = {
  dag : int64;
  order : int64;
  lambda : int64;
  downtime : int64;
  backend : Eval_engine.backend;
}

let fnv_prime = 0x100000001b3L

let fold_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h :=
      Int64.mul
        (Int64.logxor !h
           (Int64.logand (Int64.shift_right_logical x (shift * 8)) 0xffL))
        fnv_prime
  done;
  !h

let order_fingerprint order =
  Array.fold_left
    (fun h v -> fold_int64 h (Int64.of_int v))
    0xcbf29ce484222325L order

let make backend (model : Wfc_platform.Failure_model.t) g ~order =
  {
    dag = Wfc_dag.Dag.fingerprint g;
    order = order_fingerprint order;
    lambda = Int64.bits_of_float model.Wfc_platform.Failure_model.lambda;
    downtime = Int64.bits_of_float model.Wfc_platform.Failure_model.downtime;
    backend;
  }

let equal a b =
  Int64.equal a.dag b.dag && Int64.equal a.order b.order
  && Int64.equal a.lambda b.lambda
  && Int64.equal a.downtime b.downtime
  && a.backend = b.backend

let hash k =
  let h = fold_int64 0xcbf29ce484222325L k.dag in
  let h = fold_int64 h k.order in
  let h = fold_int64 h k.lambda in
  let h = fold_int64 h k.downtime in
  let h =
    fold_int64 h
      (Int64.of_int
         (match k.backend with
         | Eval_engine.Naive -> 0
         | Eval_engine.Incremental -> 1
         | Eval_engine.Flat -> 2))
  in
  Int64.to_int (Int64.logand h 0x3fffffffffffffffL)

let to_string k =
  Printf.sprintf "%Lx-%Lx-%Lx-%Lx-%s" k.dag k.order k.lambda k.downtime
    (Eval_engine.backend_name k.backend)
