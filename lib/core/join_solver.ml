let is_join g =
  match Wfc_dag.Dag.sinks g with
  | [ sink ] ->
      let n = Wfc_dag.Dag.n_tasks g in
      let others = List.filter (fun v -> v <> sink) (List.init n Fun.id) in
      if
        others <> []
        && List.for_all
             (fun v ->
               Wfc_dag.Dag.preds g v = [] && Wfc_dag.Dag.succs g v = [ sink ])
             others
      then Some sink
      else None
  | _ -> None

let g_value model (t : Wfc_dag.Task.t) =
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let wc = t.Wfc_dag.Task.weight +. t.Wfc_dag.Task.checkpoint_cost in
  let r = t.Wfc_dag.Task.recovery_cost in
  Float.exp (-.lambda *. (wc +. r))
  +. Float.exp (-.lambda *. r)
  -. Float.exp (-.lambda *. wc)

(* Corrected exchange criterion (see the erratum in the interface): place a
   before b iff (1-e^{-λ r_a})/(1-e^{-λ(w_a+c_a)}) <= same for b. *)
let order_key model (t : Wfc_dag.Task.t) =
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let wc = t.Wfc_dag.Task.weight +. t.Wfc_dag.Task.checkpoint_cost in
  let r = t.Wfc_dag.Task.recovery_cost in
  if lambda = 0. then if wc = 0. then (if r = 0. then 0. else infinity) else r /. wc
  else
    let num = -.Float.expm1 (-.lambda *. r) in
    let den = -.Float.expm1 (-.lambda *. wc) in
    if den = 0. then (if num = 0. then 0. else infinity) else num /. den

let the_sink g =
  match is_join g with
  | Some sink -> sink
  | None -> invalid_arg "Join_solver: not a join DAG"

let check_flags g sink ~ckpt =
  if Array.length ckpt <> Wfc_dag.Dag.n_tasks g then
    invalid_arg "Join_solver: flag array size mismatch";
  if ckpt.(sink) then
    invalid_arg "Join_solver: checkpointing the sink is not modeled"

(* Checkpointed sources in increasing order of the corrected key, ties by
   id. *)
let ckpt_order model g sink ~ckpt =
  let cands =
    List.filter (fun v -> v <> sink && ckpt.(v))
      (List.init (Wfc_dag.Dag.n_tasks g) Fun.id)
  in
  List.sort
    (fun a b ->
      match
        Float.compare
          (order_key model (Wfc_dag.Dag.task g a))
          (order_key model (Wfc_dag.Dag.task g b))
      with
      | 0 -> Int.compare a b
      | c -> c)
    cands

let check_sigma g sink ~ckpt ~sigma =
  let flagged =
    List.filter (fun v -> v <> sink && ckpt.(v))
      (List.init (Wfc_dag.Dag.n_tasks g) Fun.id)
  in
  if List.sort Int.compare sigma <> flagged then
    invalid_arg "Join_solver: sigma is not a permutation of the flagged sources"

let expected_makespan_order model g ~ckpt ~sigma =
  let sink = the_sink g in
  check_flags g sink ~ckpt;
  check_sigma g sink ~ckpt ~sigma;
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let downtime = model.Wfc_platform.Failure_model.downtime in
  let task v = Wfc_dag.Dag.task g v in
  let sigma = Array.of_list sigma in
  let n_ckpt = Array.length sigma in
  let w_nckpt =
    Wfc_dag.Dag.total_weight g
    -. Array.fold_left
         (fun acc v -> acc +. (task v).Wfc_dag.Task.weight)
         0. sigma
  in
  let e = Wfc_platform.Failure_model.expected_exec_time model in
  (* phase 1: each checkpointed source completes independently *)
  let phase1 =
    Array.fold_left
      (fun acc v ->
        let t = task v in
        acc
        +. e ~work:t.Wfc_dag.Task.weight
             ~checkpoint:t.Wfc_dag.Task.checkpoint_cost ~recovery:0.)
      0. sigma
  in
  if lambda = 0. then phase1 +. w_nckpt
  else if n_ckpt = 0 then phase1 +. e ~work:w_nckpt ~checkpoint:0. ~recovery:0.
  else begin
    (* phase 2, conditioned on which checkpointed task saw the last fault *)
    let r_total =
      Array.fold_left
        (fun acc v -> acc +. (task v).Wfc_dag.Task.recovery_cost)
        0. sigma
    in
    let t0 =
      ((1. /. lambda) +. downtime)
      *. Float.expm1 (lambda *. (w_nckpt +. r_total))
    in
    (* suffix.(k) = sum_{j >= k} (w + c) over sigma, for the q terms *)
    let suffix = Array.make (n_ckpt + 1) 0. in
    for k = n_ckpt - 1 downto 0 do
      let t = task sigma.(k) in
      suffix.(k) <-
        suffix.(k + 1) +. t.Wfc_dag.Task.weight +. t.Wfc_dag.Task.checkpoint_cost
    done;
    let phase2 = ref 0. in
    let r_prefix = ref 0. in
    for k = 0 to n_ckpt - 1 do
      let t = task sigma.(k) in
      let q =
        if k = 0 then Float.exp (-.lambda *. suffix.(1))
        else
          -.Float.expm1
              (-.lambda
              *. (t.Wfc_dag.Task.weight +. t.Wfc_dag.Task.checkpoint_cost))
          *. Float.exp (-.lambda *. suffix.(k + 1))
      in
      let p = Float.exp (-.lambda *. (w_nckpt +. !r_prefix)) in
      let t_k = (1. -. p) *. ((1. /. lambda) +. downtime +. t0) in
      phase2 := !phase2 +. (q *. t_k);
      r_prefix := !r_prefix +. t.Wfc_dag.Task.recovery_cost
    done;
    phase1 +. !phase2
  end

let expected_makespan model g ~ckpt =
  let sink = the_sink g in
  expected_makespan_order model g ~ckpt ~sigma:(ckpt_order model g sink ~ckpt)

let schedule_of ?model g ~ckpt =
  let sink = the_sink g in
  check_flags g sink ~ckpt;
  let model =
    match model with
    | Some m -> m
    | None -> Wfc_platform.Failure_model.make ~lambda:1e-6 ()
  in
  let ck = ckpt_order model g sink ~ckpt in
  let others =
    List.filter (fun v -> v <> sink && not ckpt.(v))
      (List.init (Wfc_dag.Dag.n_tasks g) Fun.id)
  in
  let order = Array.of_list (ck @ others @ [ sink ]) in
  Schedule.make g ~order ~checkpointed:ckpt

type solution = { ckpt : bool array; makespan : float }

let sources_of g sink =
  List.filter (fun v -> v <> sink) (List.init (Wfc_dag.Dag.n_tasks g) Fun.id)

let solve_uniform_costs model g =
  let sink = the_sink g in
  let sources = sources_of g sink in
  let c0 = (Wfc_dag.Dag.task g (List.hd sources)).Wfc_dag.Task.checkpoint_cost in
  let r0 = (Wfc_dag.Dag.task g (List.hd sources)).Wfc_dag.Task.recovery_cost in
  List.iter
    (fun v ->
      let t = Wfc_dag.Dag.task g v in
      if
        not
          (Float.equal t.Wfc_dag.Task.checkpoint_cost c0
          && Float.equal t.Wfc_dag.Task.recovery_cost r0)
      then invalid_arg "Join_solver.solve_uniform_costs: non-uniform costs")
    sources;
  let by_weight =
    List.sort
      (fun a b ->
        Float.compare
          (Wfc_dag.Dag.task g b).Wfc_dag.Task.weight
          (Wfc_dag.Dag.task g a).Wfc_dag.Task.weight)
      sources
  in
  let n = Wfc_dag.Dag.n_tasks g in
  let best = ref None in
  for n_ckpt = 0 to List.length by_weight do
    let ckpt = Array.make n false in
    List.iteri (fun i v -> if i < n_ckpt then ckpt.(v) <- true) by_weight;
    let makespan = expected_makespan model g ~ckpt in
    match !best with
    | Some s when s.makespan <= makespan -> ()
    | _ -> best := Some { ckpt; makespan }
  done;
  Option.get !best

let solve_exact model g =
  Wfc_obs.Trace.with_span "join_solver.solve_exact" @@ fun () ->
  let sink = the_sink g in
  let sources = Array.of_list (sources_of g sink) in
  let k = Array.length sources in
  if k > 20 then invalid_arg "Join_solver.solve_exact: too many sources";
  let n = Wfc_dag.Dag.n_tasks g in
  let best = ref None in
  for mask = 0 to (1 lsl k) - 1 do
    let ckpt = Array.make n false in
    Array.iteri (fun i v -> if mask land (1 lsl i) <> 0 then ckpt.(v) <- true)
      sources;
    let makespan = expected_makespan model g ~ckpt in
    match !best with
    | Some s when s.makespan <= makespan -> ()
    | _ -> best := Some { ckpt; makespan }
  done;
  Option.get !best

let zero_recovery_makespan model g ~ckpt =
  let sink = the_sink g in
  check_flags g sink ~ckpt;
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let downtime = model.Wfc_platform.Failure_model.downtime in
  let sources = sources_of g sink in
  let sum_ckpt = ref 0. and w_nckpt = ref (Wfc_dag.Dag.weight g sink) in
  List.iter
    (fun v ->
      let t = Wfc_dag.Dag.task g v in
      if ckpt.(v) then begin
        if t.Wfc_dag.Task.recovery_cost <> 0. then
          invalid_arg "Join_solver.zero_recovery_makespan: nonzero recovery";
        sum_ckpt :=
          !sum_ckpt
          +. Float.expm1
               (lambda
               *. (t.Wfc_dag.Task.weight +. t.Wfc_dag.Task.checkpoint_cost))
      end
      else w_nckpt := !w_nckpt +. t.Wfc_dag.Task.weight)
    sources;
  if lambda = 0. then
    (* degenerate limit: no failures, expectation is plain work + checkpoints *)
    List.fold_left
      (fun acc v ->
        let t = Wfc_dag.Dag.task g v in
        acc +. if ckpt.(v) then t.Wfc_dag.Task.checkpoint_cost else 0.)
      (Wfc_dag.Dag.total_weight g)
      sources
  else
    ((1. /. lambda) +. downtime)
    *. (!sum_ckpt +. Float.expm1 (lambda *. !w_nckpt))
