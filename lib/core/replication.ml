module FM = Wfc_platform.Failure_model
module Metrics = Wfc_obs.Metrics

let m_evaluations = Metrics.counter "repl.evaluations"

let default_cost = 1.

let effective_weight ~cost ~weight ~r =
  if not (cost >= 0.) then invalid_arg "Replication: negative replica cost";
  weight *. (1. +. (cost *. float_of_int (r - 1)))

let harmonic r =
  let h = ref 0. in
  for j = 1 to r do
    h := !h +. (1. /. float_of_int j)
  done;
  !h

(* {1 Per-attempt failure algebra}

   A task with [r] replicas runs r independent copies of each attempt, every
   copy exposed to its own exponential failure clock at the platform rate
   [lambda]. The attempt of length [t] is lost only when all r copies fail
   inside it, which happens with probability [(1 - e^{-lambda t})^r]; the
   loss occurs when the last copy dies. [r = 1] recovers the paper's model
   exactly. *)

let attempt_failure_probability ~lambda ~r t =
  if lambda <= 0. || t <= 0. then 0.
  else begin
    let q1 = -.Float.expm1 (-.lambda *. t) in
    let q = ref q1 in
    for _ = 2 to r do
      q := !q *. q1
    done;
    !q
  end

(* tau_bar(t) = E[max of r iid Exp(lambda) | all < t] = t - I(t)/F(t) with
   F(s) = (1 - e^{-lambda s})^r and I = integral of F over [0, t], expanded
   by the binomial theorem. The alternating sum cancels catastrophically for
   lambda t << 1, but the value is always weighted by the attempt failure
   probability F(t) (itself ~ (lambda t)^r there), so clamping to [0, t]
   bounds the absolute error of the product harmlessly. *)
let conditional_mean_elapsed ~lambda ~r t =
  if not (Float.is_finite t) then harmonic r /. lambda
  else begin
    let f = attempt_failure_probability ~lambda ~r t in
    if f <= 0. then t
    else begin
      let integral = ref t in
      let binom = ref 1. in
      for j = 1 to r do
        binom := !binom *. float_of_int (r - j + 1) /. float_of_int j;
        let jf = float_of_int j in
        let em = -.Float.expm1 (-.jf *. lambda *. t) in
        let term = !binom *. em /. (jf *. lambda) in
        if j land 1 = 1 then integral := !integral -. term
        else integral := !integral +. term
      done;
      Float.max 0. (Float.min t (t -. (!integral /. f)))
    end
  end

(* The exposure e(t) such that exp (-lambda * e(t)) equals the attempt's
   survival probability 1 - (1 - e^{-lambda t})^r: accumulating these per
   separating attempt turns the product of per-attempt survivals back into
   the single-exponential form the Theorem 3 recurrences use. r = 1 is the
   identity. *)
let equivalent_exposure ~lambda ~r t =
  if r = 1 then t
  else if lambda <= 0. then 0.
  else begin
    let q = attempt_failure_probability ~lambda ~r t in
    if q >= 1. then Float.infinity else -.Float.log1p (-.q) /. lambda
  end

(* Replicated generalization of the paper's Eq (1): a renewal of attempts
   whose first try lasts [work + checkpoint] and whose retries prepend the
   [recovery] read, each attempt lost with probability F(length) at the
   elapsed time tau_bar(length), followed by one repair [downtime]. For
   r = 1 this reduces algebraically to
   e^{lambda recovery} (1/lambda + D) (e^{lambda (work+checkpoint)} - 1). *)
let expected_attempt_time ~lambda ~downtime ~r ~work ~checkpoint ~recovery =
  let a0 = work +. checkpoint in
  if lambda <= 0. then a0
  else begin
    let q0 = attempt_failure_probability ~lambda ~r a0 in
    if q0 <= 0. then a0
    else begin
      let a1 = recovery +. a0 in
      let q1 = attempt_failure_probability ~lambda ~r a1 in
      if q1 >= 1. then Float.infinity
      else begin
        let t0 = conditional_mean_elapsed ~lambda ~r a0 in
        let t1 = conditional_mean_elapsed ~lambda ~r a1 in
        let retry =
          (((1. -. q1) *. a1) +. (q1 *. (t1 +. downtime))) /. (1. -. q1)
        in
        ((1. -. q0) *. a0) +. (q0 *. (t0 +. downtime +. retry))
      end
    end
  end

(* {1 Replicated Theorem 3} *)

type result = {
  makespan : float;
  per_position : float array;
  fault_probability : float array;
}

let evaluate ?(cost = default_cost) model g sched =
  if Metrics.enabled () then Metrics.incr m_evaluations;
  let n = Schedule.n_tasks sched in
  let lambda = model.FM.lambda in
  let downtime = model.FM.downtime in
  let order = Array.init n (Schedule.task_at sched) in
  let pos = Array.make n 0 in
  Array.iteri (fun p v -> pos.(v) <- p) order;
  let reps = Array.init n (Schedule.replicas_of sched) in
  let checkpointed = Array.init n (Schedule.is_checkpointed sched) in
  (* effective weights: every extra replica re-executes the task's work,
     priced at [cost] times the original; checkpoint writes and recovery
     reads are shared by the copies and stay unscaled *)
  let weight =
    Array.init n (fun v ->
        effective_weight ~cost
          ~weight:(Wfc_dag.Dag.task g v).Wfc_dag.Task.weight
          ~r:reps.(v))
  in
  let recovery =
    Array.init n (fun v -> (Wfc_dag.Dag.task g v).Wfc_dag.Task.recovery_cost)
  in
  let ckpt_cost =
    Array.init n (fun v ->
        if checkpointed.(v) then
          (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost
        else 0.)
  in
  (* lost-work matrix over the effective weights: replayed tasks re-run with
     their replicas too, so lost work is charged at the surcharged rate *)
  let replayed = Array.make n false in
  let lost = Array.init n (fun k -> Array.make (n - k) 0.) in
  for k = 0 to n - 1 do
    Lost_work.compute_row_into g ~order ~pos ~checkpointed ~weight ~recovery
      ~replayed ~k lost.(k)
  done;
  let replay k i = if k < 0 then 0. else lost.(k).(i - k) in
  let segment = Array.make n 0. in
  let segment_start = ref 0. in
  let fault_probability = Array.make n 0. in
  let per_position = Array.make n 0. in
  let makespan = ref 0. in
  for i = 0 to n - 1 do
    let v = order.(i) in
    let w_i = weight.(v) and c_i = ckpt_cost.(v) and r_i = reps.(v) in
    let replay_full = replay i i in
    let expectation k =
      let l = replay k i in
      let work = l +. w_i and recovery = Float.max 0. (replay_full -. l) in
      if r_i = 1 then
        (* unreplicated task: the oracle's own closed form, bit-identical *)
        FM.expected_exec_time model ~work ~checkpoint:c_i ~recovery
      else
        expected_attempt_time ~lambda ~downtime ~r:r_i ~work ~checkpoint:c_i
          ~recovery
    in
    let p_fresh = Float.exp (-.lambda *. !segment_start) in
    let e_xi = ref (if p_fresh > 0. then p_fresh *. expectation (-1) else 0.) in
    let sum_p = ref p_fresh in
    for k = 0 to i - 2 do
      let p = Float.exp (-.lambda *. segment.(k)) *. fault_probability.(k) in
      sum_p := !sum_p +. p;
      if p > 0. then e_xi := !e_xi +. (p *. expectation k)
    done;
    if i >= 1 then begin
      let p_last = Float.max 0. (1. -. !sum_p) in
      fault_probability.(i - 1) <- p_last;
      if p_last > 0. then e_xi := !e_xi +. (p_last *. expectation (i - 1))
    end;
    per_position.(i) <- !e_xi;
    makespan := !makespan +. !e_xi;
    (* advance the separating-work sums in survival-equivalent exposure
       units: exp (-lambda * sum of exposures) is exactly the probability
       that every separating attempt kept at least one replica alive *)
    for k = 0 to i - 1 do
      segment.(k) <-
        segment.(k)
        +. equivalent_exposure ~lambda ~r:r_i (replay k i +. w_i +. c_i)
    done;
    segment_start :=
      !segment_start +. equivalent_exposure ~lambda ~r:r_i (w_i +. c_i)
  done;
  if n >= 1 then begin
    let sum_p = ref (Float.exp (-.lambda *. !segment_start)) in
    for k = 0 to n - 2 do
      sum_p :=
        !sum_p +. (Float.exp (-.lambda *. segment.(k)) *. fault_probability.(k))
    done;
    fault_probability.(n - 1) <- Float.max 0. (1. -. !sum_p)
  end;
  { makespan = !makespan; per_position; fault_probability }

let expected_makespan ?cost model g sched = (evaluate ?cost model g sched).makespan

(* {1 Replication specs (CLI surface)} *)

type spec = Auto | No_replication | Heavy of int | Budget of float

let spec_name = function
  | Auto -> "auto"
  | No_replication -> "none"
  | Heavy k -> Printf.sprintf "k:%d" k
  | Budget f -> Printf.sprintf "budget:%g" f

let spec_of_string s =
  match String.lowercase_ascii s with
  | "auto" -> Some Auto
  | "none" -> Some No_replication
  | s -> (
      match String.index_opt s ':' with
      | Some i -> (
          let key = String.sub s 0 i in
          let v = String.sub s (i + 1) (String.length s - i - 1) in
          match key with
          | "k" -> (
              match int_of_string_opt v with
              | Some k when k >= 1 -> Some (Heavy k)
              | _ -> None)
          | "budget" -> (
              match float_of_string_opt v with
              | Some f when f > 0. && Float.is_finite f -> Some (Budget f)
              | _ -> None)
          | _ -> None)
      | None -> None)
