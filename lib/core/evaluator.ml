type result = {
  makespan : float;
  per_position : float array;
  fault_probability : float array;
}

let fail_free_time g = Wfc_dag.Dag.total_weight g

let evaluate_plain ?lost model g sched =
  let n = Schedule.n_tasks sched in
  let lost =
    match lost with Some l -> l | None -> Lost_work.compute g sched
  in
  let lambda = model.Wfc_platform.Failure_model.lambda in
  let weight_at p =
    (Wfc_dag.Dag.task g (Schedule.task_at sched p)).Wfc_dag.Task.weight
  in
  let ckpt_at p =
    let v = Schedule.task_at sched p in
    if Schedule.is_checkpointed sched v then
      (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost
    else 0.
  in
  let replay k i = Lost_work.replay_time lost ~last_fault:k ~position:i in
  (* segment.(k) holds sum_{j=k+1..i-1} (L(k,j) + w_j + delta_j c_j), the
     failure-free work separating X_k from X_i, updated incrementally as i
     advances; segment_start is the k = -1 ("no failure yet") variant. *)
  let segment = Array.make n 0. in
  let segment_start = ref 0. in
  let fault_probability = Array.make n 0. in
  let per_position = Array.make n 0. in
  let makespan = ref 0. in
  for i = 0 to n - 1 do
    let w_i = weight_at i and c_i = ckpt_at i in
    let replay_full = replay i i in
    let expectation k =
      let l = replay k i in
      Wfc_platform.Failure_model.expected_exec_time model ~work:(l +. w_i)
        ~checkpoint:c_i
        ~recovery:(Float.max 0. (replay_full -. l))
    in
    (* probability of each fault epoch k = -1, 0..i-1 (recurrences A and B) *)
    let p_fresh = Float.exp (-.lambda *. !segment_start) in
    let e_xi = ref (if p_fresh > 0. then p_fresh *. expectation (-1) else 0.) in
    let sum_p = ref p_fresh in
    for k = 0 to i - 2 do
      let p = Float.exp (-.lambda *. segment.(k)) *. fault_probability.(k) in
      sum_p := !sum_p +. p;
      if p > 0. then e_xi := !e_xi +. (p *. expectation k)
    done;
    if i >= 1 then begin
      let p_last = Float.max 0. (1. -. !sum_p) in
      fault_probability.(i - 1) <- p_last;
      if p_last > 0. then e_xi := !e_xi +. (p_last *. expectation (i - 1))
    end;
    per_position.(i) <- !e_xi;
    makespan := !makespan +. !e_xi;
    (* advance the separating-work sums for the next position *)
    let s_of k = replay k i +. w_i +. c_i in
    for k = 0 to i - 1 do
      segment.(k) <- segment.(k) +. s_of k
    done;
    segment_start := !segment_start +. w_i +. c_i
  done;
  (* Recurrence (B) defines P(F(X_{i-1})) while processing i; one virtual
     step past the last position fills in the final interval. *)
  if n >= 1 then begin
    let sum_p = ref (Float.exp (-.lambda *. !segment_start)) in
    for k = 0 to n - 2 do
      sum_p :=
        !sum_p +. (Float.exp (-.lambda *. segment.(k)) *. fault_probability.(k))
    done;
    fault_probability.(n - 1) <- Float.max 0. (1. -. !sum_p)
  end;
  { makespan = !makespan; per_position; fault_probability }

let evaluate ?lost ?replica_cost model g sched =
  if Schedule.is_replicated sched then begin
    (* replicated schedules change the lost-work weights themselves, so a
       caller-provided unreplicated matrix would silently be wrong *)
    if lost <> None then
      invalid_arg "Evaluator.evaluate: ?lost with a replicated schedule";
    let r = Replication.evaluate ?cost:replica_cost model g sched in
    {
      makespan = r.Replication.makespan;
      per_position = r.Replication.per_position;
      fault_probability = r.Replication.fault_probability;
    }
  end
  else evaluate_plain ?lost model g sched

let expected_makespan ?lost ?replica_cost model g sched =
  (evaluate ?lost ?replica_cost model g sched).makespan

let ratio model g sched =
  let m = expected_makespan model g sched in
  let tinf = fail_free_time g in
  (* zero-total-weight DAGs: T_inf = 0 and the naive quotient is NaN (0/0)
     or spurious inf; a schedule doing no work in no time is a ratio-1
     execution, anything slower (checkpoint or downtime costs) degrades
     infinitely *)
  if tinf > 0. then m /. tinf else if m = 0. then 1. else Float.infinity
