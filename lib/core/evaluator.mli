(** Expected makespan of a schedule (Theorem 3 of the paper).

    The execution time decomposes as [sum_i X_i], where [X_i] spans from the
    first success of the task at position [i-1] to the first success of the
    task at position [i]. Conditioning on the event [Z^i_k] — "the most
    recent failure happened during [X_k]" — gives
    [E\[X_i\] = sum_k P(Z^i_k) E\[X_i | Z^i_k\]], where

    - [P(Z^i_k)] follows the recurrences (A) and (B) of the paper from the
      replay sums of {!Lost_work}, and
    - [E\[X_i | Z^i_k\] = E\[t(L(k,i) + w_i ; delta_i c_i ; L(i,i) - L(k,i))\]]
      with [L] the replay time and [delta_i] the checkpoint flag: the first
      attempt replays what was lost given [Z^i_k], while each retry replays
      the full loss of a failure during [X_i] itself.

    The computation is exact for exponentially distributed failures, costs
    [O(n^2)] once the replay sums are known, and is valid even when failures
    strike during checkpoints and recoveries. *)

type result = {
  makespan : float;  (** expected execution time of the schedule *)
  per_position : float array;  (** [E\[X_i\]] for each position [i] *)
  fault_probability : float array;
      (** [P(F(X_i))]: probability that at least one failure occurs during
          interval [X_i] *)
}

val evaluate :
  ?lost:Lost_work.t ->
  ?replica_cost:float ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Schedule.t ->
  result
(** [evaluate model g s] computes the full decomposition. The replay sums are
    computed on the fly unless [lost] provides them. The makespan is
    [infinity] when the failure rate makes some segment's expectation
    overflow — such schedules compare as worse than any finite one.

    Replicated schedules ({!Schedule.is_replicated}) dispatch to
    {!Replication.evaluate} with the [replica_cost] surcharge (default
    {!Replication.default_cost}); unreplicated schedules take the original
    path untouched, bit for bit.

    @raise Invalid_argument if [lost] is given with a replicated schedule
    (the matrix must be recomputed over surcharged weights). *)

val expected_makespan :
  ?lost:Lost_work.t ->
  ?replica_cost:float ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Schedule.t ->
  float
(** [expected_makespan model g s = (evaluate model g s).makespan]. *)

val fail_free_time : Wfc_dag.Dag.t -> float
(** [T_inf]: duration of a failure-free, checkpoint-free execution — the sum
    of all task weights (linearization-independent). *)

val ratio :
  Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> Schedule.t -> float
(** [ratio model g s] is [expected_makespan model g s /. fail_free_time g],
    the quantity plotted by every figure of the paper. Degenerate
    zero-total-weight DAGs never produce NaN: when [fail_free_time g = 0.]
    the ratio is [1.] if the expected makespan is also zero and [infinity]
    otherwise (checkpoint or recovery overhead on zero work). *)
