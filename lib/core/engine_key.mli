(** Identity of a warm evaluation engine, the key of the serving layer's
    engine LRU.

    A warm {!Eval_engine.handle} may answer for a request exactly when its
    bound [(backend, model, dag, order)] quadruple matches the request's.
    This key digests each component into 64-bit fingerprints — the DAG via
    {!Wfc_dag.Dag.fingerprint}, the linearization via the same FNV-1a fold,
    the model via the raw IEEE bits of lambda and downtime — so lookups are
    O(1) and the key retains no reference to the DAG. Equal keys mean
    bit-identical evaluation up to the documented fingerprint collision
    risk (2{^-64}-ish per pair). *)

type t = {
  dag : int64;  (** {!Wfc_dag.Dag.fingerprint} of the workflow *)
  order : int64;  (** FNV-1a fold of the linearization *)
  lambda : int64;  (** IEEE bits of the failure rate *)
  downtime : int64;  (** IEEE bits of the downtime *)
  backend : Eval_engine.backend;
}

val make :
  Eval_engine.backend ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  t

val order_fingerprint : int array -> int64
(** The FNV-1a fold used for the [order] component (exposed for tests). *)

val equal : t -> t -> bool
val hash : t -> int

val to_string : t -> string
(** Hex rendering, e.g. for cache-debug logs. *)
