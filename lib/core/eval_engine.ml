module FM = Wfc_platform.Failure_model
module Metrics = Wfc_obs.Metrics

(* Engine observability. Counters are recorded per [ensure] call (never per
   row or per inner-loop iteration), so a disabled layer costs one atomic
   load and branch on the query path. "Hits" and "misses" count cached
   lost-work rows served vs recomputed; a query hit is an [ensure] whose
   whole prefix was already valid. *)
let m_queries = Metrics.counter "engine.queries"
let m_query_hits = Metrics.counter "engine.query_hits"
let m_row_hits = Metrics.counter "engine.row_hits"
let m_rows_recomputed = Metrics.counter "engine.rows_recomputed"
let m_steps = Metrics.counter "engine.steps"
let m_restores = Metrics.counter "engine.snapshot_restores"
let m_flips = Metrics.counter "engine.flips"
let m_batch = Metrics.counter "engine.batch_candidates"

type backend = Naive | Incremental | Flat

let backend_name = function
  | Naive -> "naive"
  | Incremental -> "incremental"
  | Flat -> "flat"

let backend_of_string s =
  match String.lowercase_ascii s with
  | "naive" -> Some Naive
  | "incremental" | "engine" -> Some Incremental
  | "flat" -> Some Flat
  | _ -> None

type t = {
  mutable model : FM.t;
  g : Wfc_dag.Dag.t;
  n : int;
  order : int array; (* position -> task *)
  pos : int array; (* task -> position *)
  weight : float array; (* by task *)
  ckpt_cost : float array; (* by task *)
  recovery : float array; (* by task *)
  flags : bool array; (* by task, current (possibly uncommitted) *)
  committed : bool array; (* by task, state restored by [rollback] *)
  (* replay matrix, same layout and row algorithm as Lost_work *)
  lost : float array array; (* lost.(k).(i - k) *)
  row_dirty : bool array;
  replayed : bool array; (* scratch for Lost_work.compute_row_into *)
  reach : int array; (* visit-row bound V(x) per task, for current flags *)
  (* evaluator state: positions [0, eval_valid) are up to date.
     pex.(k) = exp (-lambda * seg(k)) where seg(k) is the separating work of
     fault row k, as in Evaluator — kept as a running product so advancing a
     row costs no transcendental beyond the expm1 the expectation needs *)
  pex : float array;
  mutable pfresh : float; (* exp (-lambda * seg_start) *)
  snap : float array array; (* snap.(i) = pex.(0..i-2) at start of step i *)
  snap_start : float array; (* pfresh at start of step i *)
  fp : float array; (* P(F(X_i)) *)
  pp : float array; (* E[X_i] *)
  ms : float array; (* ms.(i) = sum of E[X_j], j < i; length n + 1 *)
  mutable eval_valid : int;
  (* the position whose start-of-step state [seg]/[seg_start] currently
     holds; always >= eval_valid. Restoring from a snapshot is only needed
     (and only sound) when rewinding, i.e. eval_valid < cursor: a partial
     [ensure] stops at a position it never stepped, whose snapshot slot is
     stale *)
  mutable cursor : int;
  (* span of uncommitted flips: positions > pend_lo may hold dirty state *)
  mutable pend_lo : int;
  mutable pend_hi : int;
}

let create ?flags model g ~order =
  if not (Wfc_dag.Dag.is_linearization g order) then
    invalid_arg "Eval_engine.create: order is not a linearization";
  let n = Array.length order in
  let pos = Array.make n (-1) in
  Array.iteri (fun p v -> pos.(v) <- p) order;
  let task v = Wfc_dag.Dag.task g v in
  let flags =
    match flags with
    | None -> Array.make n false
    | Some f ->
        if Array.length f <> n then
          invalid_arg "Eval_engine.create: flags have the wrong size";
        Array.copy f
  in
  {
    model;
    g;
    n;
    order;
    pos;
    weight = Array.init n (fun v -> (task v).Wfc_dag.Task.weight);
    ckpt_cost = Array.init n (fun v -> (task v).Wfc_dag.Task.checkpoint_cost);
    recovery = Array.init n (fun v -> (task v).Wfc_dag.Task.recovery_cost);
    flags;
    committed = Array.copy flags;
    lost = Array.init n (fun k -> Array.make (n - k) 0.);
    row_dirty = Array.make n true;
    replayed = Array.make n false;
    reach = Array.make n 0;
    pex = Array.make (Int.max 1 (n - 1)) 1.;
    pfresh = 1.;
    snap = Array.init n (fun i -> Array.make (Int.max 0 (i - 1)) 0.);
    snap_start = Array.make n 0.;
    fp = Array.make n 0.;
    pp = Array.make n 0.;
    ms = Array.make (n + 1) 0.;
    eval_valid = 0;
    cursor = 0;
    pend_lo = n;
    pend_hi = -1;
  }

let n_tasks t = t.n
let order t = Array.copy t.order
let flags t = Array.copy t.flags
let model t = t.model

(* The lost-work matrix depends only on the DAG, order and flags — never on
   the model — so rebinding lambda/downtime keeps every cached row and only
   invalidates the evaluator recurrence. *)
let set_model t model =
  if model <> t.model then begin
    t.model <- model;
    t.eval_valid <- 0
  end

(* ---- visit-row bound -------------------------------------------------- *)

(* V(x): no row k > V(x) can visit x during the lost-work DFS, under the
   current flags. A task is visited either as the DFS start of its own
   position (rows k <= pos x) or by recursion from a visited successor when
   it is not checkpointed. Flipping the flag of [v] therefore only changes
   rows k in (pos v, max over successors of V], because both v's own charge
   and any recursion through v into its ancestors require v to be charged. *)
let refresh_reach t =
  for p = t.n - 1 downto 0 do
    let x = t.order.(p) in
    let m = ref p in
    if not t.flags.(x) then
      Array.iter
        (fun y -> if t.reach.(y) > !m then m := t.reach.(y))
        (Wfc_dag.Dag.succs_array t.g x);
    t.reach.(x) <- !m
  done

let charge_bound t v =
  let m = ref t.pos.(v) in
  Array.iter
    (fun y -> if t.reach.(y) > !m then m := t.reach.(y))
    (Wfc_dag.Dag.succs_array t.g v);
  !m

let mark t ~p ~hi =
  for k = p + 1 to hi do
    t.row_dirty.(k) <- true
  done;
  if p < t.eval_valid then t.eval_valid <- p;
  if p < t.pend_lo then t.pend_lo <- p;
  if hi > t.pend_hi then t.pend_hi <- hi

(* ---- evaluator steps -------------------------------------------------- *)

let restore t p =
  if p = 0 then begin
    Array.fill t.pex 0 (Array.length t.pex) 1.;
    t.pfresh <- 1.
  end
  else begin
    (* rows >= p - 1 are (re)assigned at their creation step before any read,
       so only the live prefix needs restoring *)
    Array.blit t.snap.(p) 0 t.pex 0 (p - 1);
    t.pfresh <- t.snap_start.(p)
  end

(* One position of the Theorem 3 recurrence, algebraically equal to
   Evaluator.evaluate's loop body but with the expectation rearranged so each
   fault row costs a single transcendental:

     E[t(l + w; c; rf - l)] = K e^{lambda rf} (expm1 (lambda (w+c))
                                               - expm1 (-lambda l))

   for l <= rf (the common case; both summands are non-negative, so the form
   is cancellation-free for any lambda), with K = 1/lambda + D. The row
   probability reuses the same expm1: advancing a row multiplies its
   exp (-lambda * seg) by exp (-lambda * (l + w + c)), and exp (-lambda * l)
   is (expm1 (-lambda * l)) + 1 in the l <= rf branch and
   1 / (expm1 (lambda * l) + 1) in the other. A row whose probability has
   underflowed to 0. stays 0. (seg only grows) and is skipped outright. *)
let step t i =
  let snap_len = Int.max 0 (i - 1) in
  Array.blit t.pex 0 t.snap.(i) 0 snap_len;
  t.snap_start.(i) <- t.pfresh;
  let v = t.order.(i) in
  let w_i = t.weight.(v) in
  let c_i = if t.flags.(v) then t.ckpt_cost.(v) else 0. in
  let wc = w_i +. c_i in
  let lambda = t.model.FM.lambda in
  if lambda = 0. then begin
    (* failure-free platform: every fault probability is zero, and pfresh
       stays at exp 0 = 1, so no row state needs advancing *)
    if i >= 1 then t.fp.(i - 1) <- 0.;
    t.pp.(i) <- wc;
    t.ms.(i + 1) <- t.ms.(i) +. wc
  end
  else begin
    let kk = (1. /. lambda) +. t.model.FM.downtime in
    let rf = t.lost.(i).(0) in
    let am1 = Float.expm1 (lambda *. wc) in
    let base = kk *. Float.exp (lambda *. rf) in
    let a = am1 +. 1. in
    let ewc = Float.exp (-.lambda *. wc) in
    let pf = t.pfresh in
    let e_xi = ref (if pf > 0. then pf *. (base *. am1) else 0.) in
    let sum_p = ref pf in
    let row = t.lost in
    let fp = t.fp in
    let pex = t.pex in
    for k = 0 to i - 2 do
      let px = Array.unsafe_get pex k in
      if px > 0. then begin
        let l = Array.unsafe_get (Array.unsafe_get row k) (i - k) in
        let p = px *. Array.unsafe_get fp k in
        sum_p := !sum_p +. p;
        if l <= rf then begin
          let u = Float.expm1 (-.lambda *. l) in
          if p > 0. then e_xi := !e_xi +. (p *. (base *. (am1 -. u)));
          Array.unsafe_set pex k (px *. (u +. 1.) *. ewc)
        end
        else begin
          let x = Float.expm1 (lambda *. l) in
          if p > 0. then e_xi := !e_xi +. (p *. (kk *. ((x *. a) +. am1)));
          Array.unsafe_set pex k (px *. ewc /. (x +. 1.))
        end
      end
    done;
    if i >= 1 then begin
      let p_last = Float.max 0. (1. -. !sum_p) in
      t.fp.(i - 1) <- p_last;
      let l = t.lost.(i - 1).(1) in
      if l <= rf then begin
        let u = Float.expm1 (-.lambda *. l) in
        if p_last > 0. then e_xi := !e_xi +. (p_last *. (base *. (am1 -. u)));
        t.pex.(i - 1) <- (u +. 1.) *. ewc
      end
      else begin
        let x = Float.expm1 (lambda *. l) in
        if p_last > 0. then
          e_xi := !e_xi +. (p_last *. (kk *. ((x *. a) +. am1)));
        t.pex.(i - 1) <- ewc /. (x +. 1.)
      end
    end;
    t.pp.(i) <- !e_xi;
    t.ms.(i + 1) <- t.ms.(i) +. !e_xi;
    t.pfresh <- pf *. ewc
  end

let ensure t upto =
  if t.eval_valid < upto then begin
    let limit = upto - 1 in
    let recomputed = ref 0 in
    for k = 0 to limit do
      if t.row_dirty.(k) then begin
        Lost_work.compute_row_into t.g ~order:t.order ~pos:t.pos
          ~checkpointed:t.flags ~weight:t.weight ~recovery:t.recovery
          ~replayed:t.replayed ~k t.lost.(k);
        t.row_dirty.(k) <- false;
        incr recomputed
      end
    done;
    let rewound = t.eval_valid < t.cursor in
    if rewound then restore t t.eval_valid;
    let steps = upto - t.eval_valid in
    for i = t.eval_valid to limit do
      step t i
    done;
    t.eval_valid <- upto;
    t.cursor <- upto;
    if Metrics.enabled () then begin
      Metrics.incr m_queries;
      Metrics.add m_rows_recomputed !recomputed;
      Metrics.add m_row_hits (upto - !recomputed);
      Metrics.add m_steps steps;
      if rewound then Metrics.incr m_restores
    end
  end
  else begin
    Metrics.incr m_queries;
    Metrics.incr m_query_hits
  end

(* ---- queries ---------------------------------------------------------- *)

let makespan t =
  ensure t t.n;
  t.ms.(t.n)

let prefix_makespan t ~upto =
  if upto < 0 || upto > t.n then
    invalid_arg "Eval_engine.prefix_makespan: position out of range";
  ensure t upto;
  t.ms.(upto)

let suffix_makespan t ~from =
  if from < 0 || from > t.n then
    invalid_arg "Eval_engine.suffix_makespan: position out of range";
  ensure t t.n;
  t.ms.(t.n) -. t.ms.(from)

let per_position t =
  ensure t t.n;
  Array.copy t.pp

let fault_probability t =
  ensure t t.n;
  (* the loop only fills fp up to n-2; one virtual step past the last
     position, exactly as in Evaluator.evaluate. With lambda = 0 every
     fp.(k) is 0 and pfresh is 1, so this correctly yields 0. *)
  if t.n >= 1 then begin
    let sum_p = ref t.pfresh in
    for k = 0 to t.n - 2 do
      sum_p := !sum_p +. (t.pex.(k) *. t.fp.(k))
    done;
    t.fp.(t.n - 1) <- Float.max 0. (1. -. !sum_p)
  end;
  Array.copy t.fp

(* ---- mutations -------------------------------------------------------- *)

let apply_flip t v =
  t.flags.(v) <- not t.flags.(v);
  refresh_reach t;
  mark t ~p:t.pos.(v) ~hi:(charge_bound t v)

let flip t v =
  if v < 0 || v >= t.n then invalid_arg "Eval_engine.flip: no such task";
  Metrics.incr m_flips;
  apply_flip t v;
  makespan t

let set_flag_at t ~pos:p b =
  if p < 0 || p >= t.n then
    invalid_arg "Eval_engine.set_flag_at: position out of range";
  let v = t.order.(p) in
  if t.flags.(v) <> b then begin
    t.flags.(v) <- b;
    (* conservative row bound: callers of the prefix API never evaluate past
       their horizon, so the extra dirty rows are never recomputed *)
    mark t ~p ~hi:(t.n - 1)
  end

let set_flags t target =
  if Array.length target <> t.n then
    invalid_arg "Eval_engine.set_flags: flags have the wrong size";
  let diffs = ref 0 in
  for v = 0 to t.n - 1 do
    if target.(v) <> t.flags.(v) then incr diffs
  done;
  if !diffs > 4 then begin
    (* many flips: one conservative interval beats per-flip reach bounds *)
    let lo = ref t.n in
    for v = 0 to t.n - 1 do
      if target.(v) <> t.flags.(v) then begin
        t.flags.(v) <- target.(v);
        if t.pos.(v) < !lo then lo := t.pos.(v)
      end
    done;
    refresh_reach t;
    mark t ~p:!lo ~hi:(t.n - 1)
  end
  else
    for v = 0 to t.n - 1 do
      if target.(v) <> t.flags.(v) then apply_flip t v
    done

let commit t =
  Array.blit t.flags 0 t.committed 0 t.n;
  t.pend_lo <- t.n;
  t.pend_hi <- -1

let rollback t =
  if t.pend_lo < t.n then begin
    Array.blit t.committed 0 t.flags 0 t.n;
    refresh_reach t;
    mark t ~p:t.pend_lo ~hi:t.pend_hi;
    t.pend_lo <- t.n;
    t.pend_hi <- -1
  end

(* ---- backend dispatch ------------------------------------------------- *)

(* The two engine representations behind one value, so search loops write a
   single code path covering Incremental and Flat. Makespans are
   bit-identical across the two (Flat_engine replays this engine's float
   operations verbatim), which keeps every search decision — and therefore
   every reported flag vector — backend-independent. *)
(* A replicated schedule re-derives the lost-work matrix from surcharged
   weights, so none of the incremental structure applies yet: the replicated
   handle caches one full [Replication.evaluate] per flag vector and replays
   the engines' prefix accounting on top. Replica counts are fixed for the
   handle's lifetime, like the order. *)
type repl = {
  mutable p_model : FM.t;
  p_g : Wfc_dag.Dag.t;
  p_n : int;
  p_order : int array;
  p_replicas : int array; (* by task *)
  p_cost : float;
  p_flags : bool array; (* by task, current (possibly uncommitted) *)
  p_committed : bool array;
  p_pp : float array; (* E[X_i] per position *)
  p_ms : float array; (* prefix sums, length n + 1 *)
  mutable p_valid : bool;
}

let repl_ensure p =
  if not p.p_valid then begin
    let sched =
      Schedule.make ~replicas:p.p_replicas p.p_g ~order:p.p_order
        ~checkpointed:p.p_flags
    in
    let r = Replication.evaluate ~cost:p.p_cost p.p_model p.p_g sched in
    Array.blit r.Replication.per_position 0 p.p_pp 0 p.p_n;
    p.p_ms.(0) <- 0.;
    for i = 0 to p.p_n - 1 do
      p.p_ms.(i + 1) <- p.p_ms.(i) +. p.p_pp.(i)
    done;
    p.p_valid <- true
  end

let repl_makespan p =
  repl_ensure p;
  p.p_ms.(p.p_n)

type handle = H_inc of t | H_flat of Flat_engine.t | H_repl of repl

let all_ones = Array.for_all (fun r -> r = 1)

let handle ?flags ?replicas ?replica_cost backend model g ~order =
  let replicated =
    match replicas with Some r when not (all_ones r) -> true | _ -> false
  in
  match backend with
  | Naive -> invalid_arg "Eval_engine.handle: the naive backend has no engine"
  | _ when replicated ->
      let replicas = Option.get replicas in
      let n = Wfc_dag.Dag.n_tasks g in
      if Array.length replicas <> n then
        invalid_arg "Eval_engine.handle: replica counts have the wrong size";
      let flags =
        match flags with
        | None -> Array.make n false
        | Some f ->
            if Array.length f <> n then
              invalid_arg "Eval_engine.handle: flags have the wrong size";
            Array.copy f
      in
      let p =
        {
          p_model = model;
          p_g = g;
          p_n = n;
          p_order = Array.copy order;
          p_replicas = Array.copy replicas;
          p_cost =
            Option.value replica_cost ~default:Replication.default_cost;
          p_flags = flags;
          p_committed = Array.copy flags;
          p_pp = Array.make n 0.;
          p_ms = Array.make (n + 1) 0.;
          p_valid = false;
        }
      in
      (* validate the order eagerly, like [create] *)
      repl_ensure p;
      H_repl p
  | Incremental -> H_inc (create ?flags model g ~order)
  | Flat -> H_flat (Flat_engine.create ?flags model g ~order)

let h_makespan = function
  | H_inc e -> makespan e
  | H_flat e -> Flat_engine.makespan e
  | H_repl p -> repl_makespan p

let h_prefix_makespan h ~upto =
  match h with
  | H_inc e -> prefix_makespan e ~upto
  | H_flat e -> Flat_engine.prefix_makespan e ~upto
  | H_repl p ->
      if upto < 0 || upto > p.p_n then
        invalid_arg "Eval_engine.prefix_makespan: position out of range";
      repl_ensure p;
      p.p_ms.(upto)

let h_suffix_makespan h ~from =
  match h with
  | H_inc e -> suffix_makespan e ~from
  | H_flat e -> Flat_engine.suffix_makespan e ~from
  | H_repl p ->
      if from < 0 || from > p.p_n then
        invalid_arg "Eval_engine.suffix_makespan: position out of range";
      repl_ensure p;
      p.p_ms.(p.p_n) -. p.p_ms.(from)

let h_flip h v =
  match h with
  | H_inc e -> flip e v
  | H_flat e -> Flat_engine.flip e v
  | H_repl p ->
      if v < 0 || v >= p.p_n then
        invalid_arg "Eval_engine.flip: task out of range";
      p.p_flags.(v) <- not p.p_flags.(v);
      p.p_valid <- false;
      repl_makespan p

let h_set_flag_at h ~pos b =
  match h with
  | H_inc e -> set_flag_at e ~pos b
  | H_flat e -> Flat_engine.set_flag_at e ~pos b
  | H_repl p ->
      if pos < 0 || pos >= p.p_n then
        invalid_arg "Eval_engine.set_flag_at: position out of range";
      let v = p.p_order.(pos) in
      if p.p_flags.(v) <> b then begin
        p.p_flags.(v) <- b;
        p.p_valid <- false
      end

let h_set_flags h target =
  match h with
  | H_inc e -> set_flags e target
  | H_flat e -> Flat_engine.set_flags e target
  | H_repl p ->
      if Array.length target <> p.p_n then
        invalid_arg "Eval_engine.set_flags: flags have the wrong size";
      if target <> p.p_flags then begin
        Array.blit target 0 p.p_flags 0 p.p_n;
        p.p_valid <- false
      end

let h_commit = function
  | H_inc e -> commit e
  | H_flat e -> Flat_engine.commit e
  | H_repl p -> Array.blit p.p_flags 0 p.p_committed 0 p.p_n

let h_rollback = function
  | H_inc e -> rollback e
  | H_flat e -> Flat_engine.rollback e
  | H_repl p ->
      if p.p_committed <> p.p_flags then begin
        Array.blit p.p_committed 0 p.p_flags 0 p.p_n;
        p.p_valid <- false
      end

let h_set_model h m =
  match h with
  | H_inc e -> set_model e m
  | H_flat e -> Flat_engine.set_model e m
  | H_repl p ->
      p.p_model <- m;
      p.p_valid <- false

let h_order = function
  | H_inc e -> order e
  | H_flat e -> Flat_engine.order e
  | H_repl p -> Array.copy p.p_order

let h_flags = function
  | H_inc e -> flags e
  | H_flat e -> Flat_engine.flags e
  | H_repl p -> Array.copy p.p_flags

let h_n_tasks = function
  | H_inc e -> n_tasks e
  | H_flat e -> Flat_engine.n_tasks e
  | H_repl p -> p.p_n

let h_replicas = function
  | H_inc _ | H_flat _ -> None
  | H_repl p -> Some (Array.copy p.p_replicas)

(* ---- batch evaluation ------------------------------------------------- *)

let batch_evaluate ?domains ?replicas ?replica_cost model g ~order candidates =
  let cands = Array.of_list candidates in
  let total = Array.length cands in
  if total = 0 then []
  else begin
    let domains =
      match domains with
      | Some d ->
          if d <= 0 then invalid_arg "Eval_engine.batch_evaluate: domains <= 0";
          d
      | None -> Wfc_platform.Domain_pool.default_domains ()
    in
    let replicas =
      match replicas with Some r when not (all_ones r) -> Some r | _ -> None
    in
    let slices = Wfc_platform.Domain_pool.chunks ~total ~domains in
    (* each domain owns a private engine; a makespan is a pure function of
       the flag vector (whatever flip path led there), so the result is
       independent of the split *)
    let parts =
      Wfc_platform.Domain_pool.run ~domains:(Array.length slices) (fun s ->
          let start, len = slices.(s) in
          Metrics.add m_batch len;
          match replicas with
          | None ->
              let e = create model g ~order in
              Array.init len (fun j ->
                  set_flags e cands.(start + j);
                  makespan e)
          | Some r ->
              Array.init len (fun j ->
                  let sched =
                    Schedule.make ~replicas:r g ~order
                      ~checkpointed:cands.(start + j)
                  in
                  Replication.expected_makespan ?cost:replica_cost model g
                    sched))
    in
    List.concat_map Array.to_list parts
  end
