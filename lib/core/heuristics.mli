(** The scheduling heuristics of Section 5.

    A heuristic combines a linearization strategy (DF, BF or RF, see
    {!Wfc_dag.Linearize}) with a checkpointing strategy. CkptNvr and CkptAlws
    are the baselines; CkptW, CkptC and CkptD checkpoint the [N] best tasks
    under their respective criteria, and CkptPer spreads [N - 1] checkpoints
    evenly over the failure-free timeline; all four search the checkpoint
    count [N] that minimizes the expected makespan computed by
    {!Evaluator}. *)

type ckpt_strategy =
  | Ckpt_never  (** no checkpoint at all *)
  | Ckpt_always  (** checkpoint every task *)
  | Ckpt_weight  (** decreasing [w_i]: longest computations first *)
  | Ckpt_cost  (** increasing [c_i]: cheapest checkpoints first *)
  | Ckpt_outweight  (** decreasing [d_i]: heaviest direct successors first *)
  | Ckpt_periodic  (** positions closest to multiples of [W / N] *)
  | Ckpt_efficiency
      (** extension beyond the paper: decreasing [w_i / c_i], the work
          protected per checkpoint second — interpolates between CkptW and
          CkptC *)

val all_ckpt_strategies : ckpt_strategy list
(** The paper's six strategies (no [Ckpt_efficiency]) — what the figure
    harness sweeps. *)

val extended_ckpt_strategies : ckpt_strategy list
(** [all_ckpt_strategies] plus [Ckpt_efficiency]. *)

val ckpt_strategy_name : ckpt_strategy -> string
(** "CkptNvr", "CkptAlws", "CkptW", "CkptC", "CkptD", "CkptPer" (the paper's
    names) or "CkptE" (the extension). *)

val ckpt_strategy_of_string : string -> ckpt_strategy option

(** How to explore the number of checkpoints [N] in [1..n-1]. *)
type search =
  | Exhaustive  (** every value, as in the paper *)
  | Grid of int  (** at most this many values, denser for small [N] *)

val candidate_counts : search -> n:int -> int list
(** The [N] values explored by [search] for an [n]-task workflow: an
    increasing subset of [1..n-1] that always contains both bounds. *)

val checkpoint_flags :
  ckpt_strategy -> Wfc_dag.Dag.t -> order:int array -> n_ckpt:int -> bool array
(** [checkpoint_flags strategy g ~order ~n_ckpt] selects which tasks
    checkpoint when the strategy is allotted [n_ckpt] checkpoints. For
    [Ckpt_periodic] the budget follows the paper: [n_ckpt = N] yields [N - 1]
    checkpoints at the tasks completing earliest after [x * W / N],
    [x = 1..N-1], on the failure-free timeline of [order]. [Ckpt_never] and
    [Ckpt_always] ignore [n_ckpt].

    @raise Invalid_argument if [n_ckpt] is outside [0..n]. *)

type outcome = {
  schedule : Schedule.t;
  makespan : float;
      (** always an {!Evaluator.expected_makespan} value: when the engine
          backend searched, the winner is re-evaluated once through the
          oracle *)
  n_ckpt : int;  (** the best checkpoint budget found *)
  evaluations : int;  (** number of candidate evaluations performed *)
}

val run :
  ?search:search ->
  ?backend:Eval_engine.backend ->
  ?rand:(int -> int) ->
  ?engine:Eval_engine.handle ->
  ?cancel:Wfc_platform.Cancel.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  lin:Wfc_dag.Linearize.strategy ->
  ckpt:ckpt_strategy ->
  outcome
(** [run model g ~lin ~ckpt] linearizes [g] with [lin] then optimizes the
    checkpoint placement with [ckpt]. [search] defaults to [Exhaustive];
    [backend] (default [Incremental]) selects whether the [N]-sweep is
    evaluated through {!Eval_engine} or one {!Evaluator} call per candidate;
    [rand] seeds the RF linearization. [cancel] (default
    {!Wfc_platform.Cancel.never}) is polled once per candidate: a cancelled
    token makes the sweep raise {!Wfc_platform.Cancel.Cancelled} instead of
    returning a partial best.

    [engine] supplies a warm {!Eval_engine.handle} already bound to
    [(g, order)] — the serving layer's LRU hands one back for repeat
    requests so the sweep skips the engine build. The model is rebound with
    {!Eval_engine.h_set_model} (cached lost-work rows survive); because the
    sweep only assigns whole flag vectors and an engine's makespan is a pure
    function of its flags, the outcome is bit-identical to a cold run.
    Ignored by the [Naive] backend and by the unsearched strategies
    (CkptNvr/CkptAlws, which cost one oracle call anyway).

    @raise Invalid_argument if [engine] is bound to a different order than
      [lin]'s linearization of [g]. *)

(** {1 Replication — the second resilience axis} *)

val replication_counts :
  ?max_replicas:int ->
  ?cost:float ->
  ?cancel:Wfc_platform.Cancel.t ->
  Replication.spec ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  sched:Schedule.t ->
  int array
(** Per-task replica counts for [sched] under the given policy:
    [No_replication] is all-ones; [Heavy k] duplicates the [k] heaviest
    tasks (the CkptW ranking); [Budget f] greedily spends a replica-work
    budget of [f *. total_weight] one [+1] replica at a time, each round
    buying the increment with the best expected-makespan reduction per unit
    of extra work (evaluated through {!Replication.expected_makespan}) and
    stopping when nothing improves; [Auto] is [Budget 0.2]. Counts are
    capped at [max_replicas] (default 4).

    @raise Invalid_argument if [max_replicas] is outside
      [1..Schedule.max_replicas], [cost] is invalid, or a [Budget] fraction
      is not positive and finite. *)

val replicate :
  ?max_replicas:int ->
  ?cost:float ->
  ?cancel:Wfc_platform.Cancel.t ->
  Replication.spec ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  outcome ->
  outcome
(** Applies {!replication_counts} to the outcome's schedule and re-evaluates
    the makespan replica-aware. The outcome is returned unchanged when the
    policy places no replica. *)

val run_replicated :
  ?search:search ->
  ?backend:Eval_engine.backend ->
  ?rand:(int -> int) ->
  ?max_replicas:int ->
  ?cost:float ->
  ?cancel:Wfc_platform.Cancel.t ->
  Replication.spec ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  lin:Wfc_dag.Linearize.strategy ->
  ckpt:ckpt_strategy ->
  outcome
(** {!run} followed by {!replicate}: checkpoint placement is optimized
    unreplicated, then the replication policy spends its budget on top. *)

val best_over_linearizations :
  ?search:search ->
  ?backend:Eval_engine.backend ->
  ?rand:(int -> int) ->
  ?cancel:Wfc_platform.Cancel.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  ckpt:ckpt_strategy ->
  Wfc_dag.Linearize.strategy * outcome
(** Runs all three linearization strategies and keeps the best outcome —
    how the paper reports Figures 3 and 5–7. *)

val name : Wfc_dag.Linearize.strategy -> ckpt_strategy -> string
(** e.g. ["DF-CkptW"]. *)
