module FM = Wfc_platform.Failure_model
module Metrics = Wfc_obs.Metrics
module A1 = Bigarray.Array1

(* Kernel observability, flushed once per [ensure] like Eval_engine's. *)
let m_queries = Metrics.counter "flat.queries"
let m_rows = Metrics.counter "flat.rows_rebuilt"
let m_expm1 = Metrics.counter "flat.expm1_calls"
let m_steps = Metrics.counter "flat.steps"
let m_flips = Metrics.counter "flat.flips"

type vec = FM.vec

(* Everything float lives on contiguous float64 buffers; everything the hot
   loops mutate that is not a buffer element is an immediate int or bool.
   Float scratch that must survive a loop iteration or a helper call sits in
   [scal] (float array stores are unboxed), int scratch in [iscal]: the
   non-flambda native compiler boxes float refs and closures, so the steady
   state flip path avoids both entirely. *)
type t = {
  mutable model : FM.t;
  g : Wfc_dag.Dag.t;
  n : int;
  order : int array; (* position -> task *)
  pos : int array; (* task -> position *)
  preds : int array array; (* borrowed adjacency, by task *)
  succs : int array array;
  (* predecessor lists flattened into one CSR pair: task v's preds, in the
     same order as [preds.(v)], occupy pre_flat.[pre_off.(v), pre_off.(v+1)).
     The replay DFS walks this instead of the array-of-arrays to keep its
     inner loop free of double indirection and length loads. *)
  pre_off : int array; (* length n + 1 *)
  pre_flat : int array;
  weight : float array; (* by task *)
  ckpt_cost : float array;
  recovery : float array;
  (* per-task lambda caches: expm1 (lambda * (w [+ c])) and
     exp (-lambda * (w [+ c])), both flag variants, rebuilt by set_model *)
  am1_on : float array;
  am1_off : float array;
  ewc_on : float array;
  ewc_off : float array;
  flags : bool array; (* by task, current (possibly uncommitted) *)
  committed : bool array;
  (* replay matrix in transposed triangular storage: entry (k, i) for
     k <= i sits at coloff.(i) + k, so the step-i inner loop over fault
     rows k walks one contiguous span. [u]/[x] cache
     expm1 (-+ lambda * lost) per entry, computed batched at row-rebuild
     time: the step loop itself runs transcendental-free. *)
  lt : vec;
  u : vec;
  x : vec;
  e_rf : vec; (* by row i: exp (lambda * lost (i, i)) *)
  (* one-deep previous-value cache per entry: the lost value each slot held
     before its last change, with the transforms that were computed for it.
     When a rebuild lands back on the cached value (flip/rollback cycles,
     local-search revert trials) the transforms are swapped in instead of
     recomputed — bit-identical, since expm1/exp are functions of the input
     bits. [lt_prev] starts as (and is invalidated to) NaN, which compares
     equal to nothing. *)
  lt_prev : vec;
  u_prev : vec;
  x_prev : vec;
  e_rf_prev : vec;
  coloff : int array; (* length n + 1; coloff.(n) = slot count *)
  row_dirty : bool array;
  mutable trans_valid : bool; (* u/x/e_rf match the current lambda *)
  (* Structural sparsity of the replay matrix. Entry (k, i) is trivially
     zero when every direct predecessor of the task at position [i] sits at
     a position [>= k]: the replay DFS then finds nothing and marks nothing,
     whatever the flags. The condition is flag-independent, so those entries
     hold their create-time zeros forever and both the rebuild and the step
     loop can skip them without reading them. [mp_pos.(i)] is the min
     position over direct preds of the task at position [i] ([max_int] when
     it has none): entry (k, i) is trivial iff [k <= mp_pos.(i)]. The
     non-trivial entries of each row are laid out as a CSR so a rebuild
     walks exactly the entries that can ever be non-zero. *)
  mp_pos : int array; (* by position *)
  nz_off : int array; (* length n + 1 *)
  nz_col : int array; (* columns i of row k, ascending, at nz_off.(k).. *)
  replayed : int array; (* DFS scratch: task visited iff slot = dfs_epoch *)
  mutable dfs_epoch : int;
  (* Selective rebuild. Each row keeps a journal of its last DFS: the tasks
     visited, in visit order ([vl]/[vl_len]), and where each CSR entry's
     segment starts ([es], indexed by CSR slot). A dirty row consults the
     change log for the flags that toggled since it was last rebuilt
     ([row_wm] is its watermark into [chg_log], -1 forces a full pass):

     - if none of the pending tasks appear in the journal, the row's old
       traversal never consulted their flags, so re-running it would make
       the same descent decisions and produce the same bits — the rebuild
       is skipped without reading the matrix (and by the same fixed-point
       argument the pending tasks stay invisible afterwards);
     - otherwise the first entry that visited a pending task is located via
       the journal; entries before it never consulted the pending flags
       (first-visit of a task is independent of that task's own flag), so
       their values, marks and journal segments are replayed from the
       journal and the DFS restarts mid-row.

     The log is reset whenever every row is clean (the steady flip/query
     state), and saturates into full rebuilds if it overflows. *)
  vl : int array array; (* row k: tasks visited by the last DFS, in order *)
  vl_len : int array;
  es : int array; (* per CSR slot: offset of the entry's segment in vl *)
  chg_log : int array;
  chg_scratch : int array; (* rebuild_row's pending filter, log-sized *)
  mutable chg_len : int;
  mutable log_sat : bool;
  mutable n_dirty : int;
  row_wm : int array;
  reach : int array; (* visit-row bound V(x), as Eval_engine *)
  mutable reach_dirty : int;
      (* highest position whose reach entry may be stale (-1 = clean).
         set_flag_at only records staleness here: the branch-and-bound never
         reads reach, so it must not pay for refreshing it. apply_flip heals
         up to the watermark before consulting charge_bound. *)
  (* evaluator state, layouts as Eval_engine but flattened *)
  pex : vec;
  (* evaluation-restart snapshots of the [pex] prefix, kept sparse: only
     positions that are multiples of 8 get a slot (snapoff.(i), length
     max 0 (i-1)); a restart at p restores the nearest snapshot at or below
     p and replays the few deterministic steps in between, which rewrite
     bit-identical values. Steps at non-snapshot positions direct their
     fused snapshot stores into the [snap_null] scratch line so the hot
     loops stay branch-free. *)
  snap : vec;
  snap_null : vec;
  snapoff : int array;
  snap_start : vec;
  fp : vec;
  pp : vec;
  ms : vec; (* length n + 1 *)
  stack_v : int array; (* iterative-DFS stacks, length n + 1 *)
  stack_i : int array;
  scal : float array; (* 0: pfresh; 1: e_xi; 2: sum_p; 3: DFS acc *)
  iscal : int array; (* 0: DFS stack ptr; 1: int acc; 2: journal cursor *)
  mutable eval_valid : int;
  mutable cursor : int;
  mutable pend_lo : int;
  mutable pend_hi : int;
  (* counter staging, flushed per ensure when metrics are enabled *)
  mutable c_rows : int;
  mutable c_expm1 : int;
  mutable c_steps : int;
}

let vec len =
  let v = A1.create Bigarray.Float64 Bigarray.C_layout (Int.max 1 len) in
  A1.fill v 0.;
  v

(* uninitialized variant for scratch only ever read after being written *)
let vec_raw len = A1.create Bigarray.Float64 Bigarray.C_layout (Int.max 1 len)

let refresh_tables t =
  let lambda = t.model.FM.lambda in
  if lambda > 0. then
    for v = 0 to t.n - 1 do
      let w = t.weight.(v) in
      let wc = w +. t.ckpt_cost.(v) in
      (* same expressions as Eval_engine.step evaluates inline, so the cached
         values are bit-identical to its per-step recomputation *)
      t.am1_off.(v) <- Float.expm1 (lambda *. w);
      t.am1_on.(v) <- Float.expm1 (lambda *. wc);
      t.ewc_off.(v) <- Float.exp (-.lambda *. w);
      t.ewc_on.(v) <- Float.exp (-.lambda *. wc)
    done

(* Recompute V(x) for positions [0, upto]. Reach flows strictly backward
   (a task's bound only reads its successors' bounds, all at later
   positions), so a flag toggle at position p leaves every bound after p
   untouched and the refresh can stop there. *)
let refresh_reach_below t upto =
  let reach = t.reach in
  for p = upto downto 0 do
    let xv = t.order.(p) in
    (* xv's own slot doubles as the max accumulator: every successor sits at
       a later position, so its slot was finalized earlier in this pass *)
    reach.(xv) <- p;
    if not t.flags.(xv) then begin
      let ss = t.succs.(xv) in
      for q = 0 to Array.length ss - 1 do
        let y = Array.unsafe_get ss q in
        if reach.(y) > reach.(xv) then reach.(xv) <- reach.(y)
      done
    end
  done

let refresh_reach t = refresh_reach_below t (t.n - 1)

let create ?flags model g ~order =
  if not (Wfc_dag.Dag.is_linearization g order) then
    invalid_arg "Flat_engine.create: order is not a linearization";
  let n = Array.length order in
  let pos = Array.make n (-1) in
  Array.iteri (fun p v -> pos.(v) <- p) order;
  let task v = Wfc_dag.Dag.task g v in
  let flags =
    match flags with
    | None -> Array.make n false
    | Some f ->
        if Array.length f <> n then
          invalid_arg "Flat_engine.create: flags have the wrong size";
        Array.copy f
  in
  let coloff = Array.make (n + 1) 0 in
  for i = 1 to n do
    coloff.(i) <- coloff.(i - 1) + i
  done;
  let snapoff = Array.make (n + 1) 0 in
  for i = 1 to n do
    snapoff.(i) <-
      snapoff.(i - 1)
      + (if (i - 1) land 7 = 0 then Int.max 0 (i - 2) else 0)
  done;
  let mp_pos =
    Array.init n (fun i ->
        Array.fold_left
          (fun acc u -> Int.min acc pos.(u))
          max_int
          (Wfc_dag.Dag.preds_array g order.(i)))
  in
  (* CSR of the non-trivial entries: column i appears in rows
     mp_pos.(i) + 1 .. i, filled with i ascending so each row list is
     sorted by column. *)
  let nz_off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    if mp_pos.(i) < i then
      for k = mp_pos.(i) + 1 to i do
        nz_off.(k + 1) <- nz_off.(k + 1) + 1
      done
  done;
  for k = 0 to n - 1 do
    nz_off.(k + 1) <- nz_off.(k) + nz_off.(k + 1)
  done;
  let nz_col = Array.make (Int.max 1 nz_off.(n)) 0 in
  let fill = Array.copy nz_off in
  for i = 0 to n - 1 do
    if mp_pos.(i) < i then
      for k = mp_pos.(i) + 1 to i do
        nz_col.(fill.(k)) <- i;
        fill.(k) <- fill.(k) + 1
      done
  done;
  let preds = Array.init n (Wfc_dag.Dag.preds_array g) in
  let pre_off = Array.make (n + 1) 0 in
  for v = 0 to n - 1 do
    pre_off.(v + 1) <- pre_off.(v) + Array.length preds.(v)
  done;
  let pre_flat = Array.make (Int.max 1 pre_off.(n)) 0 in
  for v = 0 to n - 1 do
    Array.blit preds.(v) 0 pre_flat pre_off.(v) (Array.length preds.(v))
  done;
  let t =
    {
      model;
      g;
      n;
      order;
      pos;
      preds;
      succs = Array.init n (Wfc_dag.Dag.succs_array g);
      pre_off;
      pre_flat;
      weight = Array.init n (fun v -> (task v).Wfc_dag.Task.weight);
      ckpt_cost = Array.init n (fun v -> (task v).Wfc_dag.Task.checkpoint_cost);
      recovery = Array.init n (fun v -> (task v).Wfc_dag.Task.recovery_cost);
      am1_on = Array.make n 0.;
      am1_off = Array.make n 0.;
      ewc_on = Array.make n 0.;
      ewc_off = Array.make n 0.;
      flags;
      committed = Array.copy flags;
      lt = vec coloff.(n);
      u = vec coloff.(n);
      x = vec coloff.(n);
      (* exp (lambda * 0) for the zero matrix the lt buffer starts as, so the
         unchanged-diagonal skip in rebuild_row is correct from the first
         build on *)
      e_rf = (let v = vec n in A1.fill v 1.; v);
      lt_prev = (let v = vec_raw coloff.(n) in A1.fill v Float.nan; v);
      (* a NaN in lt_prev guards every read of the paired slots, so their
         initial contents never escape *)
      u_prev = vec_raw coloff.(n);
      x_prev = vec_raw coloff.(n);
      e_rf_prev = vec_raw n;
      coloff;
      row_dirty = Array.make n true;
      trans_valid = true;
      mp_pos;
      nz_off;
      nz_col;
      replayed = Array.make n (-1);
      dfs_epoch = 0;
      vl = Array.init n (fun k -> Array.make (Int.max 1 k) 0);
      vl_len = Array.make n 0;
      es = Array.make (Int.max 1 nz_off.(n)) 0;
      chg_log = Array.make 64 0;
      chg_scratch = Array.make 64 0;
      chg_len = 0;
      log_sat = false;
      n_dirty = n;
      row_wm = Array.make n (-1);
      reach = Array.make n 0;
      reach_dirty = -1;
      pex = vec (Int.max 1 (n - 1));
      snap = vec snapoff.(n);
      snap_null = vec n;
      snapoff;
      snap_start = vec n;
      fp = vec n;
      pp = vec n;
      ms = vec (n + 1);
      stack_v = Array.make (n + 1) 0;
      stack_i = Array.make (n + 1) 0;
      scal = Array.make 4 0.;
      iscal = Array.make 3 0;
      eval_valid = 0;
      cursor = 0;
      pend_lo = n;
      pend_hi = -1;
      c_rows = 0;
      c_expm1 = 0;
      c_steps = 0;
    }
  in
  refresh_tables t;
  refresh_reach t;
  A1.fill t.pex 1.;
  t.scal.(0) <- 1.;
  t

let n_tasks t = t.n
let order t = Array.copy t.order
let flags t = Array.copy t.flags
let model t = t.model

let set_model t model =
  if model <> t.model then begin
    t.model <- model;
    refresh_tables t;
    t.trans_valid <- false;
    t.eval_valid <- 0
  end

(* ---- visit-row bound, as Eval_engine but closure-free ------------------ *)

let charge_bound t v =
  let iscal = t.iscal in
  iscal.(1) <- t.pos.(v);
  let ss = t.succs.(v) in
  for q = 0 to Array.length ss - 1 do
    let y = Array.unsafe_get ss q in
    if t.reach.(y) > iscal.(1) then iscal.(1) <- t.reach.(y)
  done;
  iscal.(1)

(* The change log restarts from zero only when every row is clean, i.e. no
   pending window still references an older slot. Called ONCE at the top of
   each mutation entry point, before any [log_change] of that mutation —
   a bulk [set_flags] logs many toggles against the same fresh log. *)
let log_begin t =
  if t.n_dirty = 0 then begin
    t.chg_len <- 0;
    t.log_sat <- false
  end

(* Record one flag toggle (append-only; [log_begin] handles the reset). *)
let log_change t v =
  if not t.log_sat then begin
    if t.chg_len >= Array.length t.chg_log then t.log_sat <- true
    else begin
      t.chg_log.(t.chg_len) <- v;
      t.chg_len <- t.chg_len + 1
    end
  end

(* [wm] is the log index of the first change this mark announces; newly
   dirty rows start their pending window there, already-dirty rows keep the
   earlier watermark. -1 forces a full rebuild (saturated or unlogged). *)
let mark t ~p ~hi ~wm =
  let wm = if t.log_sat then -1 else wm in
  for k = p + 1 to hi do
    if not t.row_dirty.(k) then begin
      t.row_dirty.(k) <- true;
      t.n_dirty <- t.n_dirty + 1;
      t.row_wm.(k) <- wm
    end
    else if wm = -1 then t.row_wm.(k) <- -1
  done;
  if p < t.eval_valid then t.eval_valid <- p;
  if p < t.pend_lo then t.pend_lo <- p;
  if hi > t.pend_hi then t.pend_hi <- hi

(* ---- rows -------------------------------------------------------------- *)

(* One replay row, recomputed in place. The DFS is the iterative image of
   Lost_work.compute_row_into: predecessors are scanned in preds order, a
   non-checkpointed charge descends immediately (pre-order), so the float
   additions happen in the exact order of the recursive version and the row
   is bit-identical to it. Two flip-path shortcuts keep the recompute cheap
   without touching a single bit of the results:

   - an entry whose every direct predecessor sits at a position [>= k]
     replays nothing and marks nothing whatever the flags, so the sweep
     visits only the static CSR of non-trivial entries ([nz_off]/[nz_col],
     built once at create from [mp_pos]);
   - replay sums are non-negative pre-order float sums, so a recomputed
     value that compares equal to the cached one is the same bits (the
     matrix never holds [-0.]), and the expm1 transforms of an unchanged
     entry — pure functions of those bits — are still valid: only entries
     that actually changed pay transcendental calls. *)
(* Fused pending-scan / prefix-replay pass: walk the journal from offset
   [o] looking for the first occurrence of a pending task, marking every
   entry passed over as already-visited under epoch [ep]. On a hit the
   prefix [0, hit) is exactly the replay prefix (up to the segment-boundary
   overshoot rebuild_row unmarks); on a miss the row is unchanged and the
   stray marks die with the epoch. One journal load serves both the scan
   and the replay. The one- and two-pending cases (single flip; local-search
   revert + next trial) are specialized so the compare rides registers. *)
let rec scan_mark1 (vl : int array) (rp : int array) ep v1 o len =
  if o >= len then len
  else
    let u = Array.unsafe_get vl o in
    if u = v1 then o
    else begin
      Array.unsafe_set rp u ep;
      scan_mark1 vl rp ep v1 (o + 1) len
    end

let rec scan_mark2 (vl : int array) (rp : int array) ep v1 v2 o len =
  if o >= len then len
  else
    let u = Array.unsafe_get vl o in
    if u = v1 || u = v2 then o
    else begin
      Array.unsafe_set rp u ep;
      scan_mark2 vl rp ep v1 v2 (o + 1) len
    end

let rec memb (ps : int array) u j pc =
  j < pc && (Array.unsafe_get ps j = u || memb ps u (j + 1) pc)

let rec scan_markn (vl : int array) (rp : int array) ep (ps : int array) pc o
    len =
  if o >= len then len
  else
    let u = Array.unsafe_get vl o in
    if memb ps u 0 pc then o
    else begin
      Array.unsafe_set rp u ep;
      scan_markn vl rp ep ps pc (o + 1) len
    end

(* CSR slot in [e, b1) whose journal segment contains offset o *)
let rec seg_of (es : int array) e b1 o =
  if e + 1 < b1 && Array.unsafe_get es (e + 1) <= o then seg_of es (e + 1) b1 o
  else e

(* Pre-order replay DFS over the flattened predecessor CSR. [pi, pend) is
   the span of predecessors still to scan for the current node; suspended
   spans live in stack_i (resume offset) / stack_v (span end). Every
   argument is an int, so classic-mode ocamlopt compiles the self tail
   calls into a register loop with no allocation. The charge accumulates
   in scal.(3) and visits append to [vl] through the iscal.(2) cursor, in
   the exact order of the recursive Lost_work version: a predecessor is
   charged when first reached, and a non-checkpointed one is descended
   into immediately, before its later siblings. *)
let rec dfs t (pf : int array) (pos : int array) (rp : int array)
    (vl : int array) k ep pi pend sp =
  if pi >= pend then begin
    if sp > 0 then
      let sp = sp - 1 in
      dfs t pf pos rp vl k ep
        (Array.unsafe_get t.stack_i sp)
        (Array.unsafe_get t.stack_v sp)
        sp
  end
  else
    let uu = Array.unsafe_get pf pi in
    let pi = pi + 1 in
    if Array.unsafe_get pos uu < k && Array.unsafe_get rp uu <> ep then begin
      Array.unsafe_set rp uu ep;
      let c = Array.unsafe_get t.iscal 2 in
      Array.unsafe_set vl c uu;
      Array.unsafe_set t.iscal 2 (c + 1);
      if Array.unsafe_get t.flags uu then begin
        Array.unsafe_set t.scal 3
          (Array.unsafe_get t.scal 3 +. Array.unsafe_get t.recovery uu);
        dfs t pf pos rp vl k ep pi pend sp
      end
      else begin
        Array.unsafe_set t.scal 3
          (Array.unsafe_get t.scal 3 +. Array.unsafe_get t.weight uu);
        Array.unsafe_set t.stack_i sp pi;
        Array.unsafe_set t.stack_v sp pend;
        dfs t pf pos rp vl k ep
          (Array.unsafe_get t.pre_off uu)
          (Array.unsafe_get t.pre_off (uu + 1))
          (sp + 1)
      end
    end
    else dfs t pf pos rp vl k ep pi pend sp

let rebuild_row t k =
  let b0 = t.nz_off.(k) and b1 = t.nz_off.(k + 1) in
  let wm = t.row_wm.(k) in
  let replayed = t.replayed in
  let ep = t.dfs_epoch + 1 in
  t.dfs_epoch <- ep;
  (* CSR slot the DFS must restart from ([b1]: row unchanged), and the
     journal length whose marks already carry epoch [ep] from the fused
     scan; rebuild_row trims the overshoot past the restart segment. *)
  let start, marked =
    if wm < 0 then (b0, 0)
    else begin
      let len = t.vl_len.(k) in
      let vl = t.vl.(k) and pos = t.pos and chg = t.chg_log in
      (* pending toggles visible to this row; tasks at positions >= k can
         never appear in its journal *)
      let ps = t.chg_scratch in
      let pc = ref 0 in
      for c = wm to t.chg_len - 1 do
        let v = Array.unsafe_get chg c in
        if Array.unsafe_get pos v < k then begin
          ps.(!pc) <- v;
          incr pc
        end
      done;
      let o =
        match !pc with
        | 0 -> len
        | 1 -> scan_mark1 vl replayed ep ps.(0) 0 len
        | 2 -> scan_mark2 vl replayed ep ps.(0) ps.(1) 0 len
        | pc -> scan_markn vl replayed ep ps pc 0 len
      in
      if o >= len then (b1, 0) else (seg_of t.es b0 b1 o, o)
    end
  in
  if start < b1 then begin
    let order = t.order
    and pos = t.pos
    and pre_off = t.pre_off
    and pre_flat = t.pre_flat
    and coloff = t.coloff
    and nz_col = t.nz_col
    and es = t.es
    and vl = t.vl.(k)
    and scal = t.scal
    and iscal = t.iscal
    and lt = t.lt
    and uvec = t.u
    and xvec = t.x
    and lt_prev = t.lt_prev
    and u_prev = t.u_prev
    and x_prev = t.x_prev in
    let lambda = t.model.FM.lambda in
    (* entries before [start] never consulted a pending flag, so their visit
       marks (and values) carry over. The fused scan already wrote epoch
       marks up to the hit offset; a full pass ([wm] < 0) marks the prefix
       here, a partial one only needs the overshoot into the restart
       segment unmarked (the restart re-visits those tasks itself). *)
    let pre = if start = b0 then 0 else Array.unsafe_get es start in
    if marked = 0 then
      for o = 0 to pre - 1 do
        Array.unsafe_set replayed (Array.unsafe_get vl o) ep
      done
    else
      for o = pre to marked - 1 do
        Array.unsafe_set replayed (Array.unsafe_get vl o) (ep - 1)
      done;
    iscal.(2) <- pre;
    for idx = start to b1 - 1 do
      let i = Array.unsafe_get nz_col idx in
      Array.unsafe_set es idx iscal.(2);
      scal.(3) <- 0.;
      let rt = Array.unsafe_get order i in
      dfs t pre_flat pos replayed vl k ep
        (Array.unsafe_get pre_off rt)
        (Array.unsafe_get pre_off (rt + 1))
        0;
      let s = coloff.(i) + k in
      let nv = scal.(3) in
      if not (nv = A1.unsafe_get lt s) then begin
        if lambda > 0. then
          if nv = A1.unsafe_get lt_prev s then begin
            (* the slot bounced back to its previous value: the cached
               transforms are the exact bits a fresh expm1 would produce *)
            let cu = A1.unsafe_get uvec s and cx = A1.unsafe_get xvec s in
            A1.unsafe_set uvec s (A1.unsafe_get u_prev s);
            A1.unsafe_set xvec s (A1.unsafe_get x_prev s);
            A1.unsafe_set u_prev s cu;
            A1.unsafe_set x_prev s cx;
            if i = k then begin
              let ce = A1.unsafe_get t.e_rf k in
              A1.unsafe_set t.e_rf k (A1.unsafe_get t.e_rf_prev k);
              A1.unsafe_set t.e_rf_prev k ce
            end
          end
          else begin
            A1.unsafe_set u_prev s (A1.unsafe_get uvec s);
            A1.unsafe_set x_prev s (A1.unsafe_get xvec s);
            A1.unsafe_set uvec s (Float.expm1 (-.lambda *. nv));
            A1.unsafe_set xvec s (Float.expm1 (lambda *. nv));
            t.c_expm1 <- t.c_expm1 + 2;
            if i = k then begin
              A1.unsafe_set t.e_rf_prev k (A1.unsafe_get t.e_rf k);
              A1.unsafe_set t.e_rf k (Float.exp (lambda *. nv))
            end
          end;
        A1.unsafe_set lt_prev s (A1.unsafe_get lt s);
        A1.unsafe_set lt s nv
      end
    done;
    t.vl_len.(k) <- iscal.(2);
    t.c_rows <- t.c_rows + 1
  end

(* Rebinding lambda keeps every replay value: one batched sweep over the
   whole triangle refreshes the cached transforms. *)
let refresh_trans t =
  let nslots = t.coloff.(t.n) in
  FM.expm1_span t.model ~lost:t.lt ~u:t.u ~x:t.x ~lo:0 ~len:nslots;
  (* the prev-value cache pairs lost values with transforms for the *old*
     lambda: poison it so no stale pair can be swapped back in *)
  A1.fill t.lt_prev Float.nan;
  t.c_expm1 <- t.c_expm1 + (2 * nslots);
  let lambda = t.model.FM.lambda in
  for i = 0 to t.n - 1 do
    A1.unsafe_set t.e_rf i
      (Float.exp (lambda *. A1.unsafe_get t.lt (t.coloff.(i) + i)))
  done;
  t.trans_valid <- true

(* ---- evaluator steps --------------------------------------------------- *)

let restore t p =
  if p = 0 then begin
    for j = 0 to A1.dim t.pex - 1 do
      A1.unsafe_set t.pex j 1.
    done;
    t.scal.(0) <- 1.
  end
  else begin
    let sb = t.snapoff.(p) in
    for j = 0 to p - 2 do
      A1.unsafe_set t.pex j (A1.unsafe_get t.snap (sb + j))
    done;
    t.scal.(0) <- A1.unsafe_get t.snap_start p
  end

(* The Theorem 3 step of Eval_engine.step, same operation order term for
   term — the difference is only where each value comes from: the expm1
   transforms are read from the row caches instead of being recomputed, so
   the loop does no transcendental work. Bit-identical results by
   construction (cached values are the same bits the inline calls produce,
   and float-array stores round-trip doubles exactly). *)
let step t i =
  let real_snap = i land 7 = 0 in
  let snap = if real_snap then t.snap else t.snap_null in
  let sb = if real_snap then t.snapoff.(i) else 0 in
  A1.unsafe_set t.snap_start i t.scal.(0);
  let v = t.order.(i) in
  let lambda = t.model.FM.lambda in
  if lambda = 0. then begin
    for j = 0 to i - 2 do
      A1.unsafe_set snap (sb + j) (A1.unsafe_get t.pex j)
    done;
    let wc =
      t.weight.(v) +. (if t.flags.(v) then t.ckpt_cost.(v) else 0.)
    in
    if i >= 1 then A1.unsafe_set t.fp (i - 1) 0.;
    A1.unsafe_set t.pp i wc;
    A1.unsafe_set t.ms (i + 1) (A1.unsafe_get t.ms i +. wc)
  end
  else begin
    let kk = (1. /. lambda) +. t.model.FM.downtime in
    let ob = t.coloff.(i) in
    let rf = A1.unsafe_get t.lt (ob + i) in
    let on = t.flags.(v) in
    let am1 = if on then t.am1_on.(v) else t.am1_off.(v) in
    let ewc = if on then t.ewc_on.(v) else t.ewc_off.(v) in
    let base = kk *. A1.unsafe_get t.e_rf i in
    let a = am1 +. 1. in
    (* The inner loops are written branch-free where the math allows it,
       without changing a bit of the result:
       - every accumulator and every [pex]/[fp] entry is a non-negative
         float and never [-0.], so adding a [+0.] term produced by a zero
         probability is the identity on the exact bits the conditional
         version computes ([s +. +0. = s] whenever [s] is not [-0.]);
       - a zero-lost entry has cached [u = -0.], and the [u] branch then
         degenerates bit-for-bit to the zero-lost shortcut
         ([am1 -. -0. = am1], [(u +. 1.) = 1.], [px *. 1. = px]), so the
         [l = 0] test is redundant and the tail is a two-way branch.
       Both loops are unrolled by four so the two accumulation chains ride
       registers through each block ([let]-bound floats stay unboxed) and
       round-trip through [scal] once per block instead of once per entry;
       the addition order is exactly that of the scalar loop. The snapshot
       copy of the pre-step [pex] is fused into both loops, and entries
       [k <= mp_pos.(i)] are structurally zero, so the contiguous head
       needs no triangle loads at all. *)
    let bam = base *. am1 in
    let scal = t.scal in
    let pf = scal.(0) in
    scal.(1) <- (if pf > 0. then pf *. bam else 0.);
    scal.(2) <- pf;
    let pex = t.pex
    and fpv = t.fp
    and lt = t.lt
    and uv = t.u
    and xv = t.x in
    let h = Int.min t.mp_pos.(i) (i - 2) in
    let hb = (h + 1) / 4 in
    for b = 0 to hb - 1 do
      let k = 4 * b in
      let s1 = scal.(1) and s2 = scal.(2) in
      let px0 = A1.unsafe_get pex k in
      A1.unsafe_set snap (sb + k) px0;
      let p0 = px0 *. A1.unsafe_get fpv k in
      let s2 = s2 +. p0 in
      let s1 = s1 +. (p0 *. bam) in
      A1.unsafe_set pex k (px0 *. ewc);
      let px1 = A1.unsafe_get pex (k + 1) in
      A1.unsafe_set snap (sb + k + 1) px1;
      let p1 = px1 *. A1.unsafe_get fpv (k + 1) in
      let s2 = s2 +. p1 in
      let s1 = s1 +. (p1 *. bam) in
      A1.unsafe_set pex (k + 1) (px1 *. ewc);
      let px2 = A1.unsafe_get pex (k + 2) in
      A1.unsafe_set snap (sb + k + 2) px2;
      let p2 = px2 *. A1.unsafe_get fpv (k + 2) in
      let s2 = s2 +. p2 in
      let s1 = s1 +. (p2 *. bam) in
      A1.unsafe_set pex (k + 2) (px2 *. ewc);
      let px3 = A1.unsafe_get pex (k + 3) in
      A1.unsafe_set snap (sb + k + 3) px3;
      let p3 = px3 *. A1.unsafe_get fpv (k + 3) in
      let s2 = s2 +. p3 in
      let s1 = s1 +. (p3 *. bam) in
      A1.unsafe_set pex (k + 3) (px3 *. ewc);
      scal.(1) <- s1;
      scal.(2) <- s2
    done;
    for k = 4 * hb to h do
      let px = A1.unsafe_get pex k in
      A1.unsafe_set snap (sb + k) px;
      let p = px *. A1.unsafe_get fpv k in
      scal.(2) <- scal.(2) +. p;
      scal.(1) <- scal.(1) +. (p *. bam);
      A1.unsafe_set pex k (px *. ewc)
    done;
    let t0 = h + 1 in
    let tb = (i - 1 - t0) / 4 in
    for b = 0 to tb - 1 do
      let k = t0 + (4 * b) in
      let s1 = scal.(1) and s2 = scal.(2) in
      let px0 = A1.unsafe_get pex k in
      A1.unsafe_set snap (sb + k) px0;
      let p0 = px0 *. A1.unsafe_get fpv k in
      let s2 = s2 +. p0 in
      let s1 =
        if A1.unsafe_get lt (ob + k) <= rf then begin
          let u = A1.unsafe_get uv (ob + k) in
          A1.unsafe_set pex k (px0 *. (u +. 1.) *. ewc);
          s1 +. (p0 *. (base *. (am1 -. u)))
        end
        else begin
          let x = A1.unsafe_get xv (ob + k) in
          A1.unsafe_set pex k (px0 *. ewc /. (x +. 1.));
          s1 +. (p0 *. (kk *. ((x *. a) +. am1)))
        end
      in
      let px1 = A1.unsafe_get pex (k + 1) in
      A1.unsafe_set snap (sb + k + 1) px1;
      let p1 = px1 *. A1.unsafe_get fpv (k + 1) in
      let s2 = s2 +. p1 in
      let s1 =
        if A1.unsafe_get lt (ob + k + 1) <= rf then begin
          let u = A1.unsafe_get uv (ob + k + 1) in
          A1.unsafe_set pex (k + 1) (px1 *. (u +. 1.) *. ewc);
          s1 +. (p1 *. (base *. (am1 -. u)))
        end
        else begin
          let x = A1.unsafe_get xv (ob + k + 1) in
          A1.unsafe_set pex (k + 1) (px1 *. ewc /. (x +. 1.));
          s1 +. (p1 *. (kk *. ((x *. a) +. am1)))
        end
      in
      let px2 = A1.unsafe_get pex (k + 2) in
      A1.unsafe_set snap (sb + k + 2) px2;
      let p2 = px2 *. A1.unsafe_get fpv (k + 2) in
      let s2 = s2 +. p2 in
      let s1 =
        if A1.unsafe_get lt (ob + k + 2) <= rf then begin
          let u = A1.unsafe_get uv (ob + k + 2) in
          A1.unsafe_set pex (k + 2) (px2 *. (u +. 1.) *. ewc);
          s1 +. (p2 *. (base *. (am1 -. u)))
        end
        else begin
          let x = A1.unsafe_get xv (ob + k + 2) in
          A1.unsafe_set pex (k + 2) (px2 *. ewc /. (x +. 1.));
          s1 +. (p2 *. (kk *. ((x *. a) +. am1)))
        end
      in
      let px3 = A1.unsafe_get pex (k + 3) in
      A1.unsafe_set snap (sb + k + 3) px3;
      let p3 = px3 *. A1.unsafe_get fpv (k + 3) in
      let s2 = s2 +. p3 in
      let s1 =
        if A1.unsafe_get lt (ob + k + 3) <= rf then begin
          let u = A1.unsafe_get uv (ob + k + 3) in
          A1.unsafe_set pex (k + 3) (px3 *. (u +. 1.) *. ewc);
          s1 +. (p3 *. (base *. (am1 -. u)))
        end
        else begin
          let x = A1.unsafe_get xv (ob + k + 3) in
          A1.unsafe_set pex (k + 3) (px3 *. ewc /. (x +. 1.));
          s1 +. (p3 *. (kk *. ((x *. a) +. am1)))
        end
      in
      scal.(1) <- s1;
      scal.(2) <- s2
    done;
    for k = t0 + (4 * tb) to i - 2 do
      let px = A1.unsafe_get pex k in
      A1.unsafe_set snap (sb + k) px;
      let p = px *. A1.unsafe_get fpv k in
      scal.(2) <- scal.(2) +. p;
      if A1.unsafe_get lt (ob + k) <= rf then begin
        let u = A1.unsafe_get uv (ob + k) in
        scal.(1) <- scal.(1) +. (p *. (base *. (am1 -. u)));
        A1.unsafe_set pex k (px *. (u +. 1.) *. ewc)
      end
      else begin
        let x = A1.unsafe_get xv (ob + k) in
        scal.(1) <- scal.(1) +. (p *. (kk *. ((x *. a) +. am1)));
        A1.unsafe_set pex k (px *. ewc /. (x +. 1.))
      end
    done;
    if i >= 1 then begin
      let p_last = Float.max 0. (1. -. scal.(2)) in
      A1.unsafe_set fpv (i - 1) p_last;
      let l = A1.unsafe_get lt (ob + i - 1) in
      if l <= rf then begin
        let u = A1.unsafe_get uv (ob + i - 1) in
        if p_last > 0. then
          scal.(1) <- scal.(1) +. (p_last *. (base *. (am1 -. u)));
        A1.unsafe_set pex (i - 1) ((u +. 1.) *. ewc)
      end
      else begin
        let x = A1.unsafe_get xv (ob + i - 1) in
        if p_last > 0. then
          scal.(1) <- scal.(1) +. (p_last *. (kk *. ((x *. a) +. am1)));
        A1.unsafe_set pex (i - 1) (ewc /. (x +. 1.))
      end
    end;
    A1.unsafe_set t.pp i scal.(1);
    A1.unsafe_set t.ms (i + 1) (A1.unsafe_get t.ms i +. scal.(1));
    scal.(0) <- pf *. ewc
  end

let flush_counters t =
  Metrics.incr m_queries;
  Metrics.add m_rows t.c_rows;
  Metrics.add m_expm1 t.c_expm1;
  Metrics.add m_steps t.c_steps;
  t.c_rows <- 0;
  t.c_expm1 <- 0;
  t.c_steps <- 0

let ensure t upto =
  if t.eval_valid < upto then begin
    if (not t.trans_valid) && t.model.FM.lambda > 0. then refresh_trans t;
    let limit = upto - 1 in
    for k = 0 to limit do
      if t.row_dirty.(k) then begin
        rebuild_row t k;
        t.row_dirty.(k) <- false;
        t.n_dirty <- t.n_dirty - 1
      end
    done;
    let from =
      if t.eval_valid < t.cursor then begin
        (* rewound: restore the nearest snapshot at or below the restart
           position and replay forward; the replayed steps recompute the
           exact bits they wrote last time (their rows are clean) *)
        let q = t.eval_valid land lnot 7 in
        restore t q;
        q
      end
      else t.eval_valid
    in
    t.c_steps <- t.c_steps + (upto - from);
    for i = from to limit do
      step t i
    done;
    t.eval_valid <- upto;
    t.cursor <- upto;
    if Metrics.enabled () then flush_counters t
  end
  else if Metrics.enabled () then flush_counters t

(* ---- queries ----------------------------------------------------------- *)

let makespan t =
  ensure t t.n;
  A1.unsafe_get t.ms t.n

let current_makespan t = A1.unsafe_get t.ms t.n

let prefix_makespan t ~upto =
  if upto < 0 || upto > t.n then
    invalid_arg "Flat_engine.prefix_makespan: position out of range";
  ensure t upto;
  A1.unsafe_get t.ms upto

let suffix_makespan t ~from =
  if from < 0 || from > t.n then
    invalid_arg "Flat_engine.suffix_makespan: position out of range";
  ensure t t.n;
  A1.unsafe_get t.ms t.n -. A1.unsafe_get t.ms from

let per_position t =
  ensure t t.n;
  Array.init t.n (A1.unsafe_get t.pp)

let fault_probability t =
  ensure t t.n;
  if t.n >= 1 then begin
    let scal = t.scal in
    scal.(2) <- scal.(0);
    for k = 0 to t.n - 2 do
      scal.(2) <- scal.(2) +. (A1.unsafe_get t.pex k *. A1.unsafe_get t.fp k)
    done;
    A1.unsafe_set t.fp (t.n - 1) (Float.max 0. (1. -. scal.(2)))
  end;
  Array.init t.n (A1.unsafe_get t.fp)

let lost_entry t ~last_fault:k ~position:i =
  if k < 0 || i < k || i >= t.n then
    invalid_arg
      (Printf.sprintf "Flat_engine.lost_entry: invalid pair k=%d i=%d" k i);
  ensure t (i + 1);
  A1.get t.lt (t.coloff.(i) + k)

(* ---- mutations --------------------------------------------------------- *)

let apply_flip t v =
  t.flags.(v) <- not t.flags.(v);
  let p = t.pos.(v) in
  refresh_reach_below t (if t.reach_dirty > p then t.reach_dirty else p);
  t.reach_dirty <- -1;
  log_begin t;
  log_change t v;
  mark t ~p:t.pos.(v) ~hi:(charge_bound t v) ~wm:(t.chg_len - 1)

let flip t v =
  if v < 0 || v >= t.n then invalid_arg "Flat_engine.flip: no such task";
  Metrics.incr m_flips;
  apply_flip t v;
  makespan t

let flip_quiet t v =
  if v < 0 || v >= t.n then invalid_arg "Flat_engine.flip_quiet: no such task";
  Metrics.incr m_flips;
  apply_flip t v;
  ensure t t.n

let set_flag_at t ~pos:p b =
  if p < 0 || p >= t.n then
    invalid_arg "Flat_engine.set_flag_at: position out of range";
  let v = t.order.(p) in
  if t.flags.(v) <> b then begin
    t.flags.(v) <- b;
    if p > t.reach_dirty then t.reach_dirty <- p;
    log_begin t;
    log_change t v;
    mark t ~p ~hi:(t.n - 1) ~wm:(t.chg_len - 1)
  end

let set_flags t target =
  if Array.length target <> t.n then
    invalid_arg "Flat_engine.set_flags: flags have the wrong size";
  let diffs = ref 0 in
  for v = 0 to t.n - 1 do
    if target.(v) <> t.flags.(v) then incr diffs
  done;
  if !diffs > 4 then begin
    let lo = ref t.n in
    let wm0 = ref (-1) in
    log_begin t;
    for v = 0 to t.n - 1 do
      if target.(v) <> t.flags.(v) then begin
        t.flags.(v) <- target.(v);
        log_change t v;
        if !wm0 < 0 then wm0 := t.chg_len - 1;
        if t.pos.(v) < !lo then lo := t.pos.(v)
      end
    done;
    refresh_reach t;
    t.reach_dirty <- -1;
    mark t ~p:!lo ~hi:(t.n - 1) ~wm:!wm0
  end
  else
    for v = 0 to t.n - 1 do
      if target.(v) <> t.flags.(v) then apply_flip t v
    done

let commit t =
  Array.blit t.flags 0 t.committed 0 t.n;
  t.pend_lo <- t.n;
  t.pend_hi <- -1

let rollback t =
  if t.pend_lo < t.n then begin
    Array.blit t.committed 0 t.flags 0 t.n;
    refresh_reach t;
    t.reach_dirty <- -1;
    (* reverted flags are not logged individually: force full rebuilds *)
    mark t ~p:t.pend_lo ~hi:t.pend_hi ~wm:(-1);
    t.pend_lo <- t.n;
    t.pend_hi <- -1
  end
