let is_chain g =
  let n = Wfc_dag.Dag.n_tasks g in
  let ok = ref (Wfc_dag.Dag.n_edges g = n - 1) in
  for i = 0 to n - 2 do
    if not (Wfc_dag.Dag.is_edge g i (i + 1)) then ok := false
  done;
  !ok

type solution = { checkpointed : bool array; makespan : float }

let check_chain g name =
  if not (is_chain g) then
    invalid_arg (Printf.sprintf "Chain_solver.%s: not a chain in id order" name)

(* Expected time of the segment of tasks k+1..m (0-based, with k = -1 for
   the chain start), recovering from task k's checkpoint on each retry and
   checkpointing task m at the end iff [ckpt_end]. *)
let segment model g ~last_ckpt:k ~until:m ~ckpt_end =
  let work = ref 0. in
  for l = k + 1 to m do
    work := !work +. Wfc_dag.Dag.weight g l
  done;
  let recovery =
    if k < 0 then 0. else (Wfc_dag.Dag.task g k).Wfc_dag.Task.recovery_cost
  in
  let checkpoint =
    if ckpt_end then (Wfc_dag.Dag.task g m).Wfc_dag.Task.checkpoint_cost else 0.
  in
  Wfc_platform.Failure_model.expected_exec_time model ~work:!work ~checkpoint
    ~recovery

let solve model g =
  Wfc_obs.Trace.with_span "chain_solver.solve" @@ fun () ->
  check_chain g "solve";
  let n = Wfc_dag.Dag.n_tasks g in
  (* dp.(m+1): best expected time to finish tasks 0..m with m checkpointed;
     dp.(0) = 0 stands for the virtual start. *)
  let dp = Array.make (n + 1) infinity in
  let prev = Array.make (n + 1) (-2) in
  dp.(0) <- 0.;
  for m = 0 to n - 1 do
    for k = -1 to m - 1 do
      let cand =
        dp.(k + 1) +. segment model g ~last_ckpt:k ~until:m ~ckpt_end:true
      in
      if cand < dp.(m + 1) then begin
        dp.(m + 1) <- cand;
        prev.(m + 1) <- k
      end
    done
  done;
  (* close with a final, non-checkpointed segment (possibly empty) *)
  let best = ref dp.(n) and best_last = ref (n - 1) in
  for k = -1 to n - 2 do
    let cand =
      dp.(k + 1) +. segment model g ~last_ckpt:k ~until:(n - 1) ~ckpt_end:false
    in
    if cand < !best then begin
      best := cand;
      best_last := k
    end
  done;
  let checkpointed = Array.make n false in
  let rec mark m =
    if m >= 0 then begin
      checkpointed.(m) <- true;
      mark prev.(m + 1)
    end
  in
  mark !best_last;
  { checkpointed; makespan = !best }

let segment_makespan model g ~checkpointed =
  check_chain g "segment_makespan";
  let n = Wfc_dag.Dag.n_tasks g in
  if Array.length checkpointed <> n then
    invalid_arg "Chain_solver.segment_makespan: flag size mismatch";
  let total = ref 0. and last = ref (-1) in
  for m = 0 to n - 1 do
    if checkpointed.(m) then begin
      total := !total +. segment model g ~last_ckpt:!last ~until:m ~ckpt_end:true;
      last := m
    end
  done;
  if !last < n - 1 then
    total :=
      !total +. segment model g ~last_ckpt:!last ~until:(n - 1) ~ckpt_end:false;
  !total
