type t = { lost : float array array (* lost.(k).(i), 0 <= k <= i < n *) }

let n_positions t = Array.length t.lost

(* One row k of the replay matrix: row.(i - k) <- W^i_k + R^i_k for
   i = k..n-1. [replayed] is scratch of length n, reset here: a task charged
   at some position is in memory for all later positions (no further failure
   until X_i ends). Shared with Eval_engine so incremental row refreshes are
   bit-identical to a from-scratch {!compute}. *)
let compute_row_into g ~order ~pos ~checkpointed ~weight ~recovery ~replayed ~k
    row =
  let n = Array.length order in
  Array.fill replayed 0 n false;
  for i = k to n - 1 do
    let acc = ref 0. in
    let rec visit v =
      Array.iter
        (fun u ->
          (* predecessors at positions >= k ran after the last failure, so
             their output is in memory *)
          if pos.(u) < k && not replayed.(u) then begin
            replayed.(u) <- true;
            if checkpointed.(u) then acc := !acc +. recovery.(u)
            else begin
              acc := !acc +. weight.(u);
              visit u
            end
          end)
        (Wfc_dag.Dag.preds_array g v)
    in
    visit order.(i);
    row.(i - k) <- !acc
  done

let compute g sched =
  let n = Schedule.n_tasks sched in
  let order = sched.Schedule.order in
  let pos = Array.make n (-1) in
  Array.iteri (fun p v -> pos.(v) <- p) order;
  let weight = Array.init n (fun v -> (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight) in
  let recovery =
    Array.init n (fun v -> (Wfc_dag.Dag.task g v).Wfc_dag.Task.recovery_cost)
  in
  let checkpointed = sched.Schedule.checkpointed in
  let lost = Array.init n (fun k -> Array.make (n - k) 0.) in
  let replayed = Array.make n false in
  for k = 0 to n - 1 do
    compute_row_into g ~order ~pos ~checkpointed ~weight ~recovery ~replayed ~k
      lost.(k)
  done;
  { lost }

let replay_time t ~last_fault:k ~position:i =
  let n = n_positions t in
  if k < -1 || i < 0 || i >= n || k > i then
    invalid_arg
      (Printf.sprintf "Lost_work.replay_time: invalid pair k=%d i=%d" k i);
  if k = -1 then 0. else t.lost.(k).(i - k)
