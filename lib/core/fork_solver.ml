type solution = {
  checkpoint_source : bool;
  makespan : float;
  makespan_if_checkpointed : float;
  makespan_if_not : float;
}

let is_fork g =
  match Wfc_dag.Dag.sources g with
  | [ src ] ->
      let n = Wfc_dag.Dag.n_tasks g in
      let others = List.filter (fun v -> v <> src) (List.init n Fun.id) in
      if
        others <> []
        && List.for_all
             (fun v ->
               Wfc_dag.Dag.preds g v = [ src ] && Wfc_dag.Dag.succs g v = [])
             others
      then Some src
      else None
  | _ -> None

let solve model g =
  Wfc_obs.Trace.with_span "fork_solver.solve" @@ fun () ->
  match is_fork g with
  | None -> invalid_arg "Fork_solver.solve: not a fork DAG"
  | Some src ->
      let t = Wfc_dag.Dag.task g src in
      let e = Wfc_platform.Failure_model.expected_exec_time model in
      let sinks_total ~recovery =
        List.fold_left
          (fun acc v ->
            acc
            +. e ~work:(Wfc_dag.Dag.task g v).Wfc_dag.Task.weight ~checkpoint:0.
                 ~recovery)
          0.
          (Wfc_dag.Dag.sinks g)
      in
      let with_ckpt =
        e ~work:t.Wfc_dag.Task.weight ~checkpoint:t.Wfc_dag.Task.checkpoint_cost
          ~recovery:0.
        +. sinks_total ~recovery:t.Wfc_dag.Task.recovery_cost
      in
      let without =
        e ~work:t.Wfc_dag.Task.weight ~checkpoint:0. ~recovery:0.
        +. sinks_total ~recovery:t.Wfc_dag.Task.weight
      in
      {
        checkpoint_source = with_ckpt < without;
        makespan = Float.min with_ckpt without;
        makespan_if_checkpointed = with_ckpt;
        makespan_if_not = without;
      }

let schedule_of g sol =
  match is_fork g with
  | None -> invalid_arg "Fork_solver.schedule_of: not a fork DAG"
  | Some src ->
      let order =
        Array.of_list
          (src :: List.filter (fun v -> v <> src)
                    (List.init (Wfc_dag.Dag.n_tasks g) Fun.id))
      in
      let checkpointed = Array.make (Wfc_dag.Dag.n_tasks g) false in
      checkpointed.(src) <- sol.checkpoint_source;
      Schedule.make g ~order ~checkpointed
