type t = {
  order : int array;
  checkpointed : bool array;
  replicas : int array;
}

let max_replicas = 8

let validate_replicas replicas =
  Array.iter
    (fun r ->
      if r < 1 || r > max_replicas then
        invalid_arg
          (Printf.sprintf "Schedule.make: replica count %d outside [1, %d]" r
             max_replicas))
    replicas

let make ?replicas g ~order ~checkpointed =
  if not (Wfc_dag.Dag.is_linearization g order) then
    invalid_arg "Schedule.make: order is not a linearization of the DAG";
  if Array.length checkpointed <> Wfc_dag.Dag.n_tasks g then
    invalid_arg "Schedule.make: checkpoint flags have the wrong size";
  let replicas =
    match replicas with
    | None -> Array.make (Array.length order) 1
    | Some r ->
        if Array.length r <> Wfc_dag.Dag.n_tasks g then
          invalid_arg "Schedule.make: replica counts have the wrong size";
        validate_replicas r;
        Array.copy r
  in
  { order = Array.copy order; checkpointed = Array.copy checkpointed; replicas }

let of_positions g ~order ~ckpt_positions =
  let n = Array.length order in
  let checkpointed = Array.make n false in
  List.iter
    (fun p ->
      if p < 0 || p >= n then
        invalid_arg "Schedule.of_positions: position out of range";
      checkpointed.(order.(p)) <- true)
    ckpt_positions;
  make g ~order ~checkpointed

let n_tasks s = Array.length s.order
let task_at s p = s.order.(p)

let position_of s v =
  let n = n_tasks s in
  let rec find p = if p >= n then raise Not_found else
      if s.order.(p) = v then p else find (p + 1)
  in
  find 0

let is_checkpointed s v = s.checkpointed.(v)

let checkpoint_count s =
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 s.checkpointed

let checkpointed_tasks s =
  List.filter (fun v -> s.checkpointed.(v)) (Array.to_list s.order)

let replicas_of s v = s.replicas.(v)
let replica_counts s = Array.copy s.replicas
let is_replicated s = Array.exists (fun r -> r > 1) s.replicas

let extra_replicas s =
  Array.fold_left (fun acc r -> acc + r - 1) 0 s.replicas

let max_replica_count s =
  Array.fold_left (fun acc r -> Int.max acc r) 1 s.replicas

let with_checkpoints s flags =
  if Array.length flags <> n_tasks s then
    invalid_arg "Schedule.with_checkpoints: size mismatch";
  { s with checkpointed = Array.copy flags }

let with_replicas s replicas =
  if Array.length replicas <> n_tasks s then
    invalid_arg "Schedule.with_replicas: size mismatch";
  validate_replicas replicas;
  { s with replicas = Array.copy replicas }

let no_checkpoints g ~order =
  make g ~order ~checkpointed:(Array.make (Wfc_dag.Dag.n_tasks g) false)

let all_checkpoints g ~order =
  make g ~order ~checkpointed:(Array.make (Wfc_dag.Dag.n_tasks g) true)

let pp ppf s =
  Array.iteri
    (fun p v ->
      if p > 0 then Format.pp_print_char ppf ' ';
      Format.fprintf ppf "T%d%s" v (if s.checkpointed.(v) then "*" else "");
      if s.replicas.(v) > 1 then Format.fprintf ppf "x%d" s.replicas.(v))
    s.order
