(** Lost-work matrix: the quantities [W^i_k + R^i_k] of the paper.

    Fix a schedule and renumber tasks by position: [X_k] is the execution
    interval ending with the first success of the task at position [k]. Given
    that the most recent failure happened during [X_k] ([k = -1] meaning "no
    failure so far"), executing the task at position [i >= k] first requires
    replaying the tasks of the set [T↓k_i]: every still-needed predecessor
    whose output was lost and not already replayed for an earlier position in
    [\[k, i)]. Replaying a checkpointed task costs its recovery [r_j]; a
    non-checkpointed one costs its weight [w_j] and recursively requires its
    own predecessors.

    This module computes the total replay time for every pair [(k, i)] — the
    only quantity the makespan evaluator needs. The implementation runs in
    [O(n |E|)] total instead of the paper's [O(n^4)] table-based Algorithm 1;
    {!Lost_work_reference} keeps the literal algorithm for cross-checking. *)

type t

val compute : Wfc_dag.Dag.t -> Schedule.t -> t
(** Computes all replay sums for the given schedule. *)

val replay_time : t -> last_fault:int -> position:int -> float
(** [replay_time t ~last_fault:k ~position:i] is [W^i_k + R^i_k], the time
    spent re-executing lost non-checkpointed tasks plus recovering lost
    checkpointed ones before the task at position [i] can run, when the last
    failure struck during [X_k]. [k = -1] denotes "no failure yet" and always
    yields [0.]; [k = i] gives the replay cost after a failure during [X_i]
    itself.

    @raise Invalid_argument unless [-1 <= k <= i < n]. *)

val n_positions : t -> int

val compute_row_into :
  Wfc_dag.Dag.t ->
  order:int array ->
  pos:int array ->
  checkpointed:bool array ->
  weight:float array ->
  recovery:float array ->
  replayed:bool array ->
  k:int ->
  float array ->
  unit
(** [compute_row_into g ~order ~pos ~checkpointed ~weight ~recovery ~replayed
    ~k row] fills [row.(i - k)] with [W^i_k + R^i_k] for [i = k..n-1].
    [pos] is the inverse permutation of [order]; [checkpointed], [weight] and
    [recovery] are indexed by task id; [replayed] is caller-provided scratch
    of length [n] (clobbered). Row [k] only depends on the checkpoint flags
    of tasks at positions [< k] — the locality {!Eval_engine} exploits to
    refresh single rows after a flag flip, with values bit-identical to a
    fresh {!compute}. *)
