(** Task replication as a second resilience axis.

    A task with [r > 1] replicas runs [r] independent copies of every attempt
    (initial execution and post-failure retries alike), each copy exposed to
    its own exponential failure clock at the platform rate. The attempt is
    lost only when {e all} [r] copies fail inside it — with probability
    [(1 - e^{-lambda t})^r] for an attempt of length [t] — and the loss is
    charged at the death of the last copy. In exchange, the task's execution
    time carries a per-extra-replica surcharge [cost] (resource price of the
    duplicated work); checkpoint writes and recovery reads are shared and
    stay unscaled.

    With all replica counts equal to 1 every formula below degenerates to the
    paper's model, and {!evaluate} is numerically identical to
    {!Evaluator.evaluate} (the unreplicated closed forms are reused
    verbatim, so the fast paths are bit-identical). *)

val default_cost : float
(** Default per-extra-replica execution surcharge (1.0: each extra copy
    costs one full execution of the task). *)

val effective_weight : cost:float -> weight:float -> r:int -> float
(** [weight *. (1. +. cost *. float (r - 1))] — the execution time a task
    occupies on the platform once its [r - 1] extra copies are priced in.
    For [r = 1] this is exactly [weight] (multiplying by [1.] is exact).

    @raise Invalid_argument if [cost] is negative or NaN. *)

(** {1 Per-attempt failure algebra} *)

val attempt_failure_probability : lambda:float -> r:int -> float -> float
(** [attempt_failure_probability ~lambda ~r t] is
    [(1 - e^{-lambda t})^r], the probability that an attempt of length [t]
    protected by [r] replicas is lost (all copies fail inside it). [0.] when
    [lambda = 0] or [t <= 0]. *)

val conditional_mean_elapsed : lambda:float -> r:int -> float -> float
(** [conditional_mean_elapsed ~lambda ~r t] is the expected time elapsed
    before the attempt is lost, {e given} that it is lost: the mean of the
    maximum of [r] iid exponentials conditioned on all landing in [[0, t]].
    Clamped to [[0, t]]; requires [lambda > 0]. *)

val equivalent_exposure : lambda:float -> r:int -> float -> float
(** [equivalent_exposure ~lambda ~r t] is the exposure [e] with
    [exp (-lambda * e)] equal to the attempt's survival probability
    [1 - (1 - e^{-lambda t})^r]. Accumulating these per separating attempt
    turns products of per-attempt survivals into the single-exponential form
    of the Theorem 3 recurrences. The identity for [r = 1]. *)

val expected_attempt_time :
  lambda:float ->
  downtime:float ->
  r:int ->
  work:float ->
  checkpoint:float ->
  recovery:float ->
  float
(** Replicated generalization of the paper's Eq (1): the expected time for
    [r]-replicated attempts to complete [work] seconds plus a [checkpoint]
    write, every post-failure retry preceded by [recovery] and one constant
    [downtime] repair per loss. Reduces algebraically to
    {!Wfc_platform.Failure_model.expected_exec_time} at [r = 1]; may return
    [infinity] when a retry can never succeed at the float level. *)

(** {1 Replicated Theorem 3 evaluation} *)

type result = {
  makespan : float;  (** expected makespan E[M] = sum of E[X_i] *)
  per_position : float array;  (** E[X_i] per schedule position *)
  fault_probability : float array;
      (** [fault_probability.(k)] = P(last effective fault strikes in the
          interval of position [k]) as seen by the final virtual step *)
}

val evaluate :
  ?cost:float -> Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> Schedule.t -> result
(** [evaluate model g sched] runs the Theorem 3 dynamic program on a
    (possibly) replicated schedule: per-task effective weights via
    {!effective_weight} (the lost-work matrix included — replayed tasks
    re-run with their replicas), per-attempt expectations via
    {!expected_attempt_time}, and separating-segment survival via
    {!equivalent_exposure}. An "effective fault" is an attempt in which all
    replicas of the executing task died. [cost] defaults to
    {!default_cost}.

    With [Schedule.is_replicated sched = false] the result equals
    {!Evaluator.evaluate} exactly (same closed forms, same operation
    order). *)

val expected_makespan :
  ?cost:float -> Wfc_platform.Failure_model.t -> Wfc_dag.Dag.t -> Schedule.t -> float

(** {1 Replication specs (CLI / heuristics surface)} *)

type spec =
  | Auto  (** pick a sensible default: [Budget 0.2] *)
  | No_replication  (** all replica counts 1 *)
  | Heavy of int  (** [r = 2] on the [k] heaviest checkpoint-worthy tasks *)
  | Budget of float
      (** greedily spend up to [f * total_weight] of extra execution by
          marginal expected-makespan gain per unit of surcharge *)

val spec_of_string : string -> spec option
(** Parses ["auto" | "none" | "k:N" | "budget:F"] (case-insensitive);
    [None] on nonsense, [N >= 1], [F > 0] finite. *)

val spec_name : spec -> string
