(** Flat-memory incremental evaluator: {!Eval_engine} semantics at hardware
    speed.

    Same contract as {!Eval_engine} — bind a [(model, dag, order)] triple,
    mutate checkpoint flags, query Theorem 3 makespans lazily — with the hot
    state rebuilt for the machine instead of the garbage collector:

    - the replay matrix, per-row survival products, snapshots and prefix
      sums live on contiguous [Bigarray.float64] buffers; the matrix is
      stored transposed (entry [(k, i)] at [i*(i+1)/2 + k]) so the step-[i]
      fault-row loop walks one contiguous span;
    - each matrix entry carries its two cached [expm1] transforms, filled by
      a batched row-wise sweep ({!Wfc_platform.Failure_model.expm1_span}) at
      row-rebuild time, so the recurrence inner loop — the code executed
      millions of times per search — performs no transcendental call at all;
    - every scratch (DFS stacks, staging rows, float/int accumulator slots)
      is preallocated: the steady-state {!flip_quiet} / {!set_flags} /
      {!prefix_makespan} path allocates nothing, which the micro bench
      asserts in minor words per flip.

    Results are bit-identical to {!Eval_engine} for every query on every
    flag vector (the step executes the same float operations in the same
    order; only the source of each transform changes), hence equal to the
    {!Evaluator} oracle up to the same [1e-9] pinned by the differential
    suites. Searches that must report oracle-exact numbers re-evaluate their
    winner through {!Evaluator}, exactly as with {!Eval_engine}. *)

type t

val create :
  ?flags:bool array ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  t
(** As {!Eval_engine.create}. All caches cold; the first query pays one full
    evaluation (and the batched transform fill).

    @raise Invalid_argument if [order] is not a linearization of [g] or
      [flags] has the wrong length. *)

val n_tasks : t -> int
val order : t -> int array
val flags : t -> bool array
val model : t -> Wfc_platform.Failure_model.t

val set_model : t -> Wfc_platform.Failure_model.t -> unit
(** Rebinds the failure model. Replay values are model-independent and all
    survive; the cached transforms are refreshed by one batched sweep over
    the whole triangle on the next query (no row recomputation). *)

val makespan : t -> float
val prefix_makespan : t -> upto:int -> float
val suffix_makespan : t -> from:int -> float
val per_position : t -> float array
val fault_probability : t -> float array
(** As the {!Eval_engine} queries, bit-identical results. *)

val flip : t -> int -> float
(** [flip t v] toggles task [v]'s flag and returns the new makespan. *)

val flip_quiet : t -> int -> unit
(** {!flip} without the boxed float return: the engine is revalidated (read
    the result with {!current_makespan}), and the whole path — reach
    refresh, row rebuilds, batched transforms, recurrence steps — allocates
    nothing. This is the steady-state search move. *)

val current_makespan : t -> float
(** The makespan computed by the last completed full-horizon validation.
    Only meaningful immediately after {!flip_quiet}, {!makespan} or
    {!suffix_makespan}; does not itself validate anything. *)

val set_flag_at : t -> pos:int -> bool -> unit
val set_flags : t -> bool array -> unit
val commit : t -> unit
val rollback : t -> unit
(** As the {!Eval_engine} mutations. *)

val lost_entry : t -> last_fault:int -> position:int -> float
(** [lost_entry t ~last_fault:k ~position:i] is the replay value the kernel
    holds for fault row [k] at position [i] (validating rows up to [i]
    first) — bit-identical to {!Lost_work.replay_time} on the same flags.
    Test and introspection hook, not a hot-path API.

    @raise Invalid_argument unless [0 <= k <= i < n]. *)
