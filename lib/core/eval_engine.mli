(** Incremental makespan evaluation for checkpoint search.

    {!Evaluator.evaluate} recomputes the full Theorem 3 recurrence — and the
    whole {!Lost_work} matrix — from scratch on every call, which makes every
    search loop (threshold sweeps, local search, branch-and-bound) pay
    [O(n^2 + n |E|)] per candidate even when consecutive candidates differ by
    a single checkpoint flag. This engine binds a fixed [(model, dag, order)]
    triple and keeps both the replay matrix and the evaluator's running state
    cached so that a one-flag change costs only the suffix it can affect:

    - replay row [k] depends only on the flags of tasks at positions [< k],
      so flipping the task at position [p] invalidates rows [> p] — and only
      those up to a reachability bound computed from the DAG (a flipped task
      is only ever charged to rows from which a successor's replay cone can
      reach it);
    - the evaluator's position [i] depends only on flags at positions [<= i],
      so evaluation restarts at [p] from a per-position snapshot of the
      segment sums instead of from position 0.

    The expectation inner loop uses an [expm1]-based rearrangement of the
    oracle's formula (one transcendental per fault row instead of four). The
    results are therefore equal to {!Evaluator.expected_makespan} only up to
    floating-point rearrangement — a relative [1e-12]-ish agreement, pinned
    at [1e-9] by the differential test suite — not bit-identical. Searches
    that must report oracle-exact numbers re-evaluate their final winner once
    through {!Evaluator}.

    For a fixed engine, [makespan] is a pure function of the current flag
    vector: any interleaving of {!flip}, {!set_flags} and {!rollback} ending
    in the same flags yields bit-identical results, which is what makes
    {!batch_evaluate} deterministic regardless of the domain split. *)

type t

type backend = Naive | Incremental | Flat
(** Selector used by the search modules: [Naive] calls {!Evaluator} per
    candidate (the pre-engine behaviour), [Incremental] uses this engine,
    [Flat] the {!Flat_engine} kernel (same semantics on flat buffers,
    bit-identical makespans to [Incremental]). *)

val backend_name : backend -> string
val backend_of_string : string -> backend option

val create :
  ?flags:bool array ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  t
(** [create model g ~order] builds an engine for the given linearization,
    with no checkpoints unless [flags] (indexed by task id, copied) says
    otherwise. All caches start cold; the first query pays one full
    evaluation.

    @raise Invalid_argument if [order] is not a linearization of [g] or
      [flags] has the wrong length. *)

val n_tasks : t -> int
val order : t -> int array
val flags : t -> bool array
(** Copies of the bound order and the current flag vector. *)

val model : t -> Wfc_platform.Failure_model.t
(** The currently bound failure model. *)

val set_model : t -> Wfc_platform.Failure_model.t -> unit
(** Rebinds the failure model, e.g. to a re-estimated lambda during adaptive
    replanning. Cheap: the lost-work matrix is model-independent, so every
    cached row survives and only the evaluator recurrence is invalidated
    (the next query pays [O(n)] steps, no row recomputation). *)

val makespan : t -> float
(** Expected makespan under the current flags. Lazy: cost is proportional to
    the dirty suffix, [O(1)] when nothing changed since the last query. *)

val prefix_makespan : t -> upto:int -> float
(** [prefix_makespan t ~upto] is the sum of [E(X_i)] for positions
    [i < upto] — the exact prefix cost used by branch-and-bound. Only
    validates caches up to [upto], so a depth-[i] tree node pays [O(n)]
    instead of a full evaluation.

    @raise Invalid_argument unless [0 <= upto <= n]. *)

val suffix_makespan : t -> from:int -> float
(** [suffix_makespan t ~from] is the sum of [E(X_i)] for positions
    [i >= from] — the expected time to finish the schedule from position
    [from] given the checkpoints recorded by the prefix flags. This is the
    objective of a suffix replan: candidates sharing the prefix flags differ
    only in these terms, so comparing suffixes is comparing makespans.

    @raise Invalid_argument unless [0 <= from <= n]. *)

val per_position : t -> float array
(** [E(X_i)] by position, as {!Evaluator.per_position}. Fresh copy. *)

val fault_probability : t -> float array
(** [P(F(X_i))] by position, as {!Evaluator.fault_probability}. Fresh
    copy. *)

val flip : t -> int -> float
(** [flip t v] toggles the checkpoint flag of task [v] and returns the new
    expected makespan, revalidating only the affected suffix. *)

val set_flag_at : t -> pos:int -> bool -> unit
(** [set_flag_at t ~pos b] sets the flag of the task at position [pos]
    without forcing any recomputation, invalidating conservatively (all rows
    past [pos]). Meant for the branch-and-bound cursor, which only ever asks
    for {!prefix_makespan} at horizons where the conservative and exact
    invalidation agree. *)

val set_flags : t -> bool array -> unit
(** [set_flags t target] flips whatever differs between the current vector
    and [target] (indexed by task id). Lazy like {!set_flag_at}. *)

val commit : t -> unit
(** Makes the current flags the rollback point. *)

val rollback : t -> unit
(** Restores the flags of the last {!commit} (or the creation flags),
    invalidating only the span touched since then. *)

(** {1 Backend dispatch}

    Search loops hold a [handle] instead of a concrete engine so one code
    path serves both engine-backed backends. Flat and Incremental handles
    return bit-identical makespans for every flag vector, so search
    decisions are backend-independent. *)

type handle

val handle :
  ?flags:bool array ->
  ?replicas:int array ->
  ?replica_cost:float ->
  backend ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  handle
(** Builds the engine the backend selects. When [replicas] (per-task counts)
    contains a count above 1, the handle evaluates the replicated schedule
    through {!Replication.evaluate} (surcharge [replica_cost], default
    {!Replication.default_cost}) with one full evaluation cached per flag
    vector — every [h_*] operation below keeps its meaning, replica counts
    stay fixed for the handle's lifetime. [replicas] absent or all-ones
    builds the ordinary backend engine, bit-identical to before.

    @raise Invalid_argument on [Naive] (which has no engine state), or on
      the conditions of {!create}. *)

val h_makespan : handle -> float
val h_prefix_makespan : handle -> upto:int -> float
val h_suffix_makespan : handle -> from:int -> float
val h_flip : handle -> int -> float
val h_set_flag_at : handle -> pos:int -> bool -> unit
val h_set_flags : handle -> bool array -> unit
val h_commit : handle -> unit
val h_rollback : handle -> unit
val h_set_model : handle -> Wfc_platform.Failure_model.t -> unit
val h_order : handle -> int array
val h_flags : handle -> bool array
val h_n_tasks : handle -> int
(** Each [h_*] is the corresponding operation of the underlying engine
    ({!flip}, {!set_flags}, … or their {!Flat_engine} counterparts). *)

val h_replicas : handle -> int array option
(** The per-task replica counts of a replicated handle, [None] for the
    ordinary backends. *)

val batch_evaluate :
  ?domains:int ->
  ?replicas:int array ->
  ?replica_cost:float ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  bool array list ->
  float list
(** [batch_evaluate model g ~order candidates] evaluates each candidate flag
    vector and returns their expected makespans in order, fanning the
    candidates across [domains] OCaml domains ({!Wfc_platform.Domain_pool},
    default {!Wfc_platform.Domain_pool.default_domains}). Each domain walks
    its contiguous slice with a private engine, so the output is
    bit-identical for every value of [domains]. With replicated [replicas]
    each candidate is scored by {!Replication.evaluate} instead (same
    determinism guarantee); all-ones [replicas] is the unchanged engine
    path.

    @raise Invalid_argument on bad [order], flag sizes, or [domains <= 0]. *)
