(** Local-search refinement of checkpoint placements (an extension beyond
    the paper, enabled by the cheap Theorem 3 evaluator).

    The paper's searched strategies constrain the checkpoint set to a
    one-parameter family (top-N under some criterion). Hill climbing over
    single checkpoint flips explores the full lattice of subsets around a
    seed schedule and quantifies how much the one-parameter restriction
    costs; the ablation bench reports the gain over each seed heuristic. *)

type result = {
  schedule : Schedule.t;  (** the improved schedule (same task order) *)
  makespan : float;
  initial_makespan : float;
  evaluations : int;  (** evaluator calls consumed *)
  flips : int;  (** accepted moves (flag flips and replica-count steps) *)
}

val improve :
  ?max_evaluations:int ->
  ?backend:Eval_engine.backend ->
  ?replica_cost:float ->
  ?max_replicas:int ->
  ?cancel:Wfc_platform.Cancel.t ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  Schedule.t ->
  result
(** [improve model g s] performs first-improvement hill climbing on the
    checkpoint flags of [s] (the linearization is kept): repeatedly sweep all
    tasks, flip any single flag that lowers the expected makespan, until a
    full sweep yields no improvement or [max_evaluations] (default [4000])
    evaluator calls have been spent. The result never degrades the seed.

    [backend] (default [Incremental]) selects how candidate flips are
    evaluated: through {!Eval_engine.flip} — each flip then costs a suffix
    re-evaluation instead of a full one — or through one {!Evaluator} call
    per flip. Reported makespans are oracle values in both cases.

    When [s] is replicated, or [max_replicas] is given, the move set also
    includes per-task replica-count steps ([+1] up to [max_replicas],
    default [max 4 (max_replica_count s)]; [-1] down to a single copy), and
    every candidate is scored through the replication-aware evaluator with
    [replica_cost] per extra copy — this path ignores [backend].

    [cancel] (default {!Wfc_platform.Cancel.never}) is polled once per
    candidate move on every path; a cancelled token aborts the climb with
    {!Wfc_platform.Cancel.Cancelled} instead of returning a partial result.

    @raise Invalid_argument if [max_replicas] is outside
      [1..Schedule.max_replicas]. *)
