type solution = { schedule : Schedule.t; makespan : float; nodes : int }

exception Node_budget_exceeded

module Metrics = Wfc_obs.Metrics
module Trace = Wfc_obs.Trace
module FM = Wfc_platform.Failure_model

(* B&B observability: search-local plain ints flushed once per solve, so
   the node loop carries no instrumentation cost at all. *)
let m_nodes = Metrics.counter "bnb.nodes"
let m_pruned = Metrics.counter "bnb.pruned"
let m_incumbents = Metrics.counter "bnb.incumbent_updates"
let m_completed = Metrics.counter "bnb.completed"
let m_exhausted = Metrics.counter "bnb.budget_exhausted"
let m_dominance = Metrics.counter "bnb.dominance_pruned"
let m_memo_hits = Metrics.counter "bnb.memo_hits"
let m_steals = Metrics.counter "bnb.steals"

(* Warm-start candidates, in a fixed order shared by every backend: the
   incumbent both searches start from is identical, which keeps the flat
   backend's node walk comparable node-for-node with the sequential one. *)
let warm_candidates g ~order =
  let n = Array.length order in
  Array.make n false :: Array.make n true
  :: List.concat_map
       (fun ckpt ->
         List.map
           (fun n_ckpt -> Heuristics.checkpoint_flags ckpt g ~order ~n_ckpt)
           (Heuristics.candidate_counts (Heuristics.Grid 16) ~n))
       [ Heuristics.Ckpt_weight; Heuristics.Ckpt_cost ]

(* admissible tail bound: each remaining interval costs at least its own
   failure-free-retry expectation *)
let tail_bound model g ~order =
  let n = Array.length order in
  let tail = Array.make (n + 1) 0. in
  for i = n - 1 downto 0 do
    tail.(i) <-
      tail.(i + 1)
      +. FM.expected_exec_time model
           ~work:(Wfc_dag.Dag.weight g order.(i))
           ~checkpoint:0. ~recovery:0.
  done;
  tail

(* ---- flat backend: dominance-pruned, memoized, parallel ---------------- *)

(* Everything a search domain owns privately; only the incumbent, the node
   budget and the stop flag are shared. *)
type flat_worker = {
  eng : Flat_engine.t;
  wflags : bool array; (* mirror of the engine's flag vector, by task *)
  tbl : (int, float * int) Hashtbl.t; (* sig -> (suffix cost, suffix bits) *)
  mutable w_pruned : int;
  mutable w_dom : int;
  mutable w_memo : int;
  mutable w_inc : int;
}

let memo_min_suffix = 8

let flat_bnb ~max_nodes ~should_stop ~cancel ~domains ~dominance ~memo model g
    ~order =
  let n = Array.length order in
  Trace.with_span "exact.bnb"
    ~args:
      [ ("n", string_of_int n);
        ("backend", "flat");
        ("domains", string_of_int domains) ]
  @@ fun () ->
  let tail = tail_bound model g ~order in
  let pos = Array.make n (-1) in
  Array.iteri (fun p v -> pos.(v) <- p) order;
  (* suffix completions are stored as position bitmasks *)
  let memo = memo && n <= 62 in
  (* warm start: oracle-evaluated heuristic sweep *)
  let inc0_flags = ref (Array.make n false) in
  let inc0 = ref infinity in
  let try_inc cand =
    Wfc_platform.Cancel.check cancel;
    let m =
      Evaluator.expected_makespan model g
        (Schedule.make g ~order ~checkpointed:cand)
    in
    if m < !inc0 then begin
      inc0 := m;
      inc0_flags := Array.copy cand
    end
  in
  List.iter try_inc (warm_candidates g ~order);
  (* hill-climb the warm start on the flat engine: a tight incumbent is the
     strongest pruner. Skipped when both pruning features are disabled so a
     parity run matches the sequential search's node walk exactly. *)
  if dominance || memo then begin
    let ls =
      Local_search.improve
        ~max_evaluations:(Int.min 4000 (Int.max 256 (8 * n)))
        ~cancel ~backend:Eval_engine.Flat model g
        (Schedule.make g ~order ~checkpointed:!inc0_flags)
    in
    if ls.Local_search.makespan < !inc0 then begin
      inc0 := ls.Local_search.makespan;
      inc0_flags := Array.copy ls.Local_search.schedule.Schedule.checkpointed
    end
  end;
  (* static flag-dominance facts per position (see DESIGN.md section 10):
     R1 — a task with no strict descendants is never replayed by any fault
     row, so its checkpoint only adds cost and exposure: never checkpoint;
     R2 — a zero-cost checkpoint with recovery <= weight makes every replay
     of the task pointwise cheaper at zero added exposure: always
     checkpoint. *)
  let skip_true = Array.make n false in
  let skip_false = Array.make n false in
  if dominance then
    for p = 0 to n - 1 do
      let v = order.(p) in
      let task = Wfc_dag.Dag.task g v in
      if Array.length (Wfc_dag.Dag.succs_array g v) = 0 then
        skip_true.(p) <- true
      else if
        task.Wfc_dag.Task.checkpoint_cost = 0.
        && task.Wfc_dag.Task.recovery_cost <= task.Wfc_dag.Task.weight
      then skip_false.(p) <- true
    done;
  (* last position over strict descendants, for the memo's frontier
     signature: a flag at position p is replay-relevant to the suffix from i
     only when some descendant sits at position >= i *)
  let last_strict = Array.make n (-1) in
  if memo then
    for p = n - 1 downto 0 do
      let v = order.(p) in
      let m = ref (-1) in
      Array.iter
        (fun y ->
          if pos.(y) > !m then m := pos.(y);
          if last_strict.(y) > !m then m := last_strict.(y))
        (Wfc_dag.Dag.succs_array g v);
      last_strict.(v) <- !m
    done;
  (* shared search state: incumbent value is read lock-free on every bound
     check; value and flags only change together under the mutex, so the
     reported optimum always matches the reported flags *)
  let incumbent = Atomic.make !inc0 in
  let inc_mu = Mutex.create () in
  let best_flags = ref !inc0_flags in
  let update_incumbent m fl =
    if m < Atomic.get incumbent then begin
      Mutex.lock inc_mu;
      if m < Atomic.get incumbent then begin
        Atomic.set incumbent m;
        best_flags := Array.copy fl
      end;
      Mutex.unlock inc_mu
    end
  in
  let node_total = Atomic.make 0 in
  let stopped = Atomic.make false in
  (* root splitting: with one domain the split depth is 0 — a single root
     explored exactly like the sequential search. With more, enumerate all
     flag prefixes of a depth giving ~4 subtrees per domain, self-scheduled
     so slow subtrees are stolen. *)
  let rec clog2 x = if x <= 1 then 0 else 1 + clog2 ((x + 1) / 2) in
  let split_depth =
    if domains = 1 then 0 else Int.min n (Int.min 10 (clog2 (4 * domains)))
  in
  let n_roots = 1 lsl split_depth in
  let states =
    Array.init (Int.min domains n_roots) (fun _ ->
        {
          eng = Flat_engine.create model g ~order;
          wflags = Array.make n false;
          tbl = Hashtbl.create 256;
          w_pruned = 0;
          w_dom = 0;
          w_memo = 0;
          w_inc = 0;
        })
  in
  let set_flag st p b =
    st.wflags.(order.(p)) <- b;
    Flat_engine.set_flag_at st.eng ~pos:p b
  in
  let sig_at st i =
    let h = ref (i * 0x9E3779B1) in
    for p = 0 to i - 1 do
      let v = order.(p) in
      if last_strict.(v) >= i then
        h := (!h * 131) + if st.wflags.(v) then (2 * p) + 1 else 2 * p
    done;
    !h land max_int
  in
  let record_completions st leaf_cost =
    for i = Int.max 1 split_depth to n - memo_min_suffix do
      let h = sig_at st i in
      let scost = leaf_cost -. Flat_engine.prefix_makespan st.eng ~upto:i in
      let bits = ref 0 in
      for p = i to n - 1 do
        if st.wflags.(order.(p)) then bits := !bits lor (1 lsl (p - i))
      done;
      Hashtbl.replace st.tbl h (scost, !bits)
    done
  in
  let exception Stop in
  (* the deadline predicate and the cancellation token are polled every 1024
     expansions, as in the sequential search; the stop flag broadcasts
     exhaustion (or cancellation) to the pool. Cancellation is remembered
     separately so it can re-raise as [Cancelled] once every domain has
     wound down and joined. *)
  let was_cancelled = Atomic.make false in
  let count_node () =
    let nd = Atomic.fetch_and_add node_total 1 + 1 in
    if nd land 1023 = 0 && Wfc_platform.Cancel.cancelled cancel then begin
      Atomic.set was_cancelled true;
      Atomic.set stopped true;
      raise Stop
    end;
    if nd > max_nodes || (nd land 1023 = 0 && should_stop ()) then begin
      Atomic.set stopped true;
      raise Stop
    end;
    if Atomic.get stopped then raise Stop
  in
  let child st i b =
    set_flag st i b;
    Flat_engine.prefix_makespan st.eng ~upto:(i + 1)
  in
  let rec go st i cost =
    count_node ();
    if i = n then begin
      if cost < Atomic.get incumbent then begin
        update_incumbent cost st.wflags;
        st.w_inc <- st.w_inc + 1;
        if memo then record_completions st cost
      end
    end
    else begin
      (* memo: a previously recorded completion of an equal checkpoint
         frontier is re-evaluated under this prefix as an incumbent
         candidate. The probability state entering position i depends on
         more than the frontier, so the stored completion is a warm start,
         never a pasted bound — sound even on hash collisions. *)
      if memo && n - i >= memo_min_suffix then begin
        match Hashtbl.find_opt st.tbl (sig_at st i) with
        | Some (scost, bits)
          when cost +. scost < Atomic.get incumbent -. 1e-9 ->
            st.w_memo <- st.w_memo + 1;
            for p = i to n - 1 do
              Flat_engine.set_flag_at st.eng ~pos:p
                ((bits lsr (p - i)) land 1 = 1)
            done;
            let m = Flat_engine.makespan st.eng in
            if m < Atomic.get incumbent then begin
              let fl = Array.copy st.wflags in
              for p = i to n - 1 do
                fl.(order.(p)) <- (bits lsr (p - i)) land 1 = 1
              done;
              update_incumbent m fl;
              st.w_inc <- st.w_inc + 1
            end
        | _ -> ()
      end;
      let try_child b c =
        if c +. tail.(i + 1) < Atomic.get incumbent -. 1e-12 then begin
          set_flag st i b;
          go st (i + 1) c
        end
        else st.w_pruned <- st.w_pruned + 1
      in
      if dominance && skip_true.(i) then begin
        st.w_dom <- st.w_dom + 1;
        try_child false (child st i false)
      end
      else if dominance && skip_false.(i) then begin
        st.w_dom <- st.w_dom + 1;
        try_child true (child st i true)
      end
      else begin
        (* evaluate both children, then explore the cheaper one first: good
           incumbents early tighten the pruning *)
        let cost_true = child st i true in
        let cost_false = child st i false in
        if cost_false <= cost_true then begin
          try_child false cost_false;
          try_child true cost_true
        end
        else begin
          try_child true cost_true;
          try_child false cost_false
        end
      end;
      set_flag st i false
    end
  in
  let process st r =
    for p = 0 to split_depth - 1 do
      set_flag st p ((r lsr p) land 1 = 1)
    done;
    if split_depth = 0 then go st 0 (Flat_engine.prefix_makespan st.eng ~upto:0)
    else begin
      let cost = Flat_engine.prefix_makespan st.eng ~upto:split_depth in
      if cost +. tail.(split_depth) < Atomic.get incumbent -. 1e-12 then
        go st split_depth cost
      else st.w_pruned <- st.w_pruned + 1
    end
  in
  let steals =
    Wfc_platform.Domain_pool.self_schedule ~domains:(Array.length states)
      ~total:n_roots (fun ~worker r ->
        if not (Atomic.get stopped) then
          try process states.(worker) r with Stop -> ())
  in
  (* every domain has joined: safe to abort the request *)
  if Atomic.get was_cancelled then raise Wfc_platform.Cancel.Cancelled;
  let status =
    if Atomic.get stopped then `Budget_exhausted else `Optimal
  in
  let nodes = Atomic.get node_total in
  if Metrics.enabled () then begin
    Metrics.add m_nodes nodes;
    Array.iter
      (fun st ->
        Metrics.add m_pruned st.w_pruned;
        Metrics.add m_dominance st.w_dom;
        Metrics.add m_memo_hits st.w_memo;
        Metrics.add m_incumbents st.w_inc)
      states;
    Metrics.add m_steals steals;
    Metrics.incr
      (match status with
      | `Optimal -> m_completed
      | `Budget_exhausted -> m_exhausted)
  end;
  let schedule = Schedule.make g ~order ~checkpointed:!best_flags in
  (* engine leaf costs differ from the oracle by rearrangement ulps; the
     reported value is always the oracle's *)
  let makespan = Evaluator.expected_makespan model g schedule in
  ({ schedule; makespan; nodes }, status)

(* ---- sequential search (naive and incremental backends) ---------------- *)

let sequential_bnb ~max_nodes ~should_stop ~cancel ~backend model g ~order =
  let n = Array.length order in
  Trace.with_span "exact.bnb"
    ~args:
      [ ("n", string_of_int n);
        ("backend", Eval_engine.backend_name backend) ]
  @@ fun () ->
  let tail = tail_bound model g ~order in
  let flags = Array.make n false in
  (* E[X_j] for j < i only depends on flags at positions < i, so evaluating
     with the suffix left untouched yields exact prefix costs. The engine
     backend keeps an incremental cursor over the search tree's flags: a
     child evaluation at depth i then only re-runs position i instead of a
     full evaluation, O(n) per node. *)
  let engine =
    match backend with
    | Eval_engine.Naive | Eval_engine.Flat -> None
    | Eval_engine.Incremental -> Some (Eval_engine.create model g ~order)
  in
  let set_flag p b =
    flags.(order.(p)) <- b;
    match engine with
    | None -> ()
    | Some e -> Eval_engine.set_flag_at e ~pos:p b
  in
  let prefix_cost upto =
    match engine with
    | Some e -> Eval_engine.prefix_makespan e ~upto
    | None ->
        let r =
          Evaluator.evaluate model g
            (Schedule.make g ~order ~checkpointed:flags)
        in
        let acc = ref 0. in
        for j = 0 to upto - 1 do
          acc := !acc +. r.Evaluator.per_position.(j)
        done;
        !acc
  in
  (* warm start: best searched heuristic as the incumbent *)
  let incumbent_flags = ref (Array.make n false) in
  let incumbent = ref infinity in
  let try_incumbent candidate =
    Wfc_platform.Cancel.check cancel;
    let m =
      Evaluator.expected_makespan model g
        (Schedule.make g ~order ~checkpointed:candidate)
    in
    if m < !incumbent then begin
      incumbent := m;
      incumbent_flags := Array.copy candidate
    end
  in
  List.iter try_incumbent (warm_candidates g ~order);
  let nodes = ref 0 in
  let pruned = ref 0 in
  let incumbent_updates = ref 0 in
  let exception Stop in
  (* the deadline predicate is polled every 1024 expansions: cheap enough to
     leave in the hot path, frequent enough for sub-second deadlines *)
  let rec go i cost =
    incr nodes;
    (* same 1024-node throttle as the deadline predicate; Cancelled escapes
       the search instead of degrading to Budget_exhausted *)
    if !nodes land 1023 = 0 then Wfc_platform.Cancel.check cancel;
    if !nodes > max_nodes || (!nodes land 1023 = 0 && should_stop ()) then
      raise Stop;
    if i = n then begin
      if cost < !incumbent then begin
        incumbent := cost;
        incumbent_flags := Array.copy flags;
        incr incumbent_updates
      end
    end
    else begin
      (* evaluate both children, then explore the cheaper one first: good
         incumbents early tighten the pruning *)
      let child b =
        set_flag i b;
        prefix_cost (i + 1)
      in
      let cost_true = child true in
      let cost_false = child false in
      let ordered =
        if cost_false <= cost_true then [ (false, cost_false); (true, cost_true) ]
        else [ (true, cost_true); (false, cost_false) ]
      in
      List.iter
        (fun (b, c) ->
          if c +. tail.(i + 1) < !incumbent -. 1e-12 then begin
            set_flag i b;
            go (i + 1) c
          end
          else incr pruned)
        ordered;
      set_flag i false
    end
  in
  let status = match go 0 0. with () -> `Optimal | exception Stop -> `Budget_exhausted in
  if Metrics.enabled () then begin
    Metrics.add m_nodes !nodes;
    Metrics.add m_pruned !pruned;
    Metrics.add m_incumbents !incumbent_updates;
    Metrics.incr
      (match status with `Optimal -> m_completed | `Budget_exhausted -> m_exhausted)
  end;
  let schedule = Schedule.make g ~order ~checkpointed:!incumbent_flags in
  let makespan =
    (* engine leaf costs differ from the oracle by rearrangement ulps; the
       reported value is always the oracle's *)
    match engine with
    | None -> !incumbent
    | Some _ -> Evaluator.expected_makespan model g schedule
  in
  ({ schedule; makespan; nodes = !nodes }, status)

let optimal_checkpoints_within ?(max_nodes = 1_000_000)
    ?(should_stop = fun () -> false)
    ?(cancel = Wfc_platform.Cancel.never)
    ?(backend = Eval_engine.Incremental) ?(domains = 1) ?(dominance = true)
    ?(memo = true) model g ~order =
  if domains < 1 then
    invalid_arg "Exact_solver.optimal_checkpoints: domains < 1";
  if not (Wfc_dag.Dag.is_linearization g order) then
    invalid_arg "Exact_solver.optimal_checkpoints: invalid order";
  match backend with
  | Eval_engine.Flat ->
      flat_bnb ~max_nodes ~should_stop ~cancel ~domains ~dominance ~memo model
        g ~order
  | Eval_engine.Naive | Eval_engine.Incremental ->
      sequential_bnb ~max_nodes ~should_stop ~cancel ~backend model g ~order

let optimal_checkpoints ?max_nodes ?cancel ?backend ?domains ?dominance ?memo
    model g ~order =
  match
    optimal_checkpoints_within ?max_nodes ?cancel ?backend ?domains ?dominance
      ?memo model g ~order
  with
  | sol, `Optimal -> sol
  | _, `Budget_exhausted -> raise Node_budget_exceeded
