type solution = { schedule : Schedule.t; makespan : float; nodes : int }

exception Node_budget_exceeded

module Metrics = Wfc_obs.Metrics
module Trace = Wfc_obs.Trace

(* B&B observability: search-local plain ints flushed once per solve, so
   the node loop carries no instrumentation cost at all. *)
let m_nodes = Metrics.counter "bnb.nodes"
let m_pruned = Metrics.counter "bnb.pruned"
let m_incumbents = Metrics.counter "bnb.incumbent_updates"
let m_completed = Metrics.counter "bnb.completed"
let m_exhausted = Metrics.counter "bnb.budget_exhausted"

let optimal_checkpoints_within ?(max_nodes = 1_000_000)
    ?(should_stop = fun () -> false)
    ?(backend = Eval_engine.Incremental) model g ~order =
  if not (Wfc_dag.Dag.is_linearization g order) then
    invalid_arg "Exact_solver.optimal_checkpoints: invalid order";
  let n = Array.length order in
  Trace.with_span "exact.bnb"
    ~args:
      [ ("n", string_of_int n);
        ("backend", Eval_engine.backend_name backend) ]
  @@ fun () ->
  (* admissible tail bound: each remaining interval costs at least its own
     failure-free-retry expectation *)
  let tail = Array.make (n + 1) 0. in
  for i = n - 1 downto 0 do
    tail.(i) <-
      tail.(i + 1)
      +. Wfc_platform.Failure_model.expected_exec_time model
           ~work:(Wfc_dag.Dag.weight g order.(i))
           ~checkpoint:0. ~recovery:0.
  done;
  let flags = Array.make n false in
  (* E[X_j] for j < i only depends on flags at positions < i, so evaluating
     with the suffix left untouched yields exact prefix costs. The engine
     backend keeps an incremental cursor over the search tree's flags: a
     child evaluation at depth i then only re-runs position i instead of a
     full evaluation, O(n) per node. *)
  let engine =
    match backend with
    | Eval_engine.Naive -> None
    | Eval_engine.Incremental -> Some (Eval_engine.create model g ~order)
  in
  let set_flag p b =
    flags.(order.(p)) <- b;
    match engine with
    | None -> ()
    | Some e -> Eval_engine.set_flag_at e ~pos:p b
  in
  let prefix_cost upto =
    match engine with
    | Some e -> Eval_engine.prefix_makespan e ~upto
    | None ->
        let r =
          Evaluator.evaluate model g
            (Schedule.make g ~order ~checkpointed:flags)
        in
        let acc = ref 0. in
        for j = 0 to upto - 1 do
          acc := !acc +. r.Evaluator.per_position.(j)
        done;
        !acc
  in
  (* warm start: best searched heuristic as the incumbent *)
  let incumbent_flags = ref (Array.make n false) in
  let incumbent = ref infinity in
  let try_incumbent candidate =
    let m =
      Evaluator.expected_makespan model g
        (Schedule.make g ~order ~checkpointed:candidate)
    in
    if m < !incumbent then begin
      incumbent := m;
      incumbent_flags := Array.copy candidate
    end
  in
  try_incumbent (Array.make n false);
  try_incumbent (Array.make n true);
  List.iter
    (fun ckpt ->
      List.iter
        (fun n_ckpt ->
          try_incumbent (Heuristics.checkpoint_flags ckpt g ~order ~n_ckpt))
        (Heuristics.candidate_counts (Heuristics.Grid 16) ~n))
    [ Heuristics.Ckpt_weight; Heuristics.Ckpt_cost ];
  let nodes = ref 0 in
  let pruned = ref 0 in
  let incumbent_updates = ref 0 in
  let exception Stop in
  (* the deadline predicate is polled every 1024 expansions: cheap enough to
     leave in the hot path, frequent enough for sub-second deadlines *)
  let rec go i cost =
    incr nodes;
    if !nodes > max_nodes || (!nodes land 1023 = 0 && should_stop ()) then
      raise Stop;
    if i = n then begin
      if cost < !incumbent then begin
        incumbent := cost;
        incumbent_flags := Array.copy flags;
        incr incumbent_updates
      end
    end
    else begin
      (* evaluate both children, then explore the cheaper one first: good
         incumbents early tighten the pruning *)
      let child b =
        set_flag i b;
        prefix_cost (i + 1)
      in
      let cost_true = child true in
      let cost_false = child false in
      let ordered =
        if cost_false <= cost_true then [ (false, cost_false); (true, cost_true) ]
        else [ (true, cost_true); (false, cost_false) ]
      in
      List.iter
        (fun (b, c) ->
          if c +. tail.(i + 1) < !incumbent -. 1e-12 then begin
            set_flag i b;
            go (i + 1) c
          end
          else incr pruned)
        ordered;
      set_flag i false
    end
  in
  let status = match go 0 0. with () -> `Optimal | exception Stop -> `Budget_exhausted in
  if Metrics.enabled () then begin
    Metrics.add m_nodes !nodes;
    Metrics.add m_pruned !pruned;
    Metrics.add m_incumbents !incumbent_updates;
    Metrics.incr
      (match status with `Optimal -> m_completed | `Budget_exhausted -> m_exhausted)
  end;
  let schedule = Schedule.make g ~order ~checkpointed:!incumbent_flags in
  let makespan =
    (* engine leaf costs differ from the oracle by rearrangement ulps; the
       reported value is always the oracle's *)
    match engine with
    | None -> !incumbent
    | Some _ -> Evaluator.expected_makespan model g schedule
  in
  ({ schedule; makespan; nodes = !nodes }, status)

let optimal_checkpoints ?max_nodes ?backend model g ~order =
  match optimal_checkpoints_within ?max_nodes ?backend model g ~order with
  | sol, `Optimal -> sol
  | _, `Budget_exhausted -> raise Node_budget_exceeded
