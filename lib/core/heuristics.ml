type ckpt_strategy =
  | Ckpt_never
  | Ckpt_always
  | Ckpt_weight
  | Ckpt_cost
  | Ckpt_outweight
  | Ckpt_periodic
  | Ckpt_efficiency

let all_ckpt_strategies =
  [ Ckpt_never; Ckpt_always; Ckpt_weight; Ckpt_cost; Ckpt_outweight;
    Ckpt_periodic ]

let extended_ckpt_strategies = all_ckpt_strategies @ [ Ckpt_efficiency ]

let ckpt_strategy_name = function
  | Ckpt_never -> "CkptNvr"
  | Ckpt_always -> "CkptAlws"
  | Ckpt_weight -> "CkptW"
  | Ckpt_cost -> "CkptC"
  | Ckpt_outweight -> "CkptD"
  | Ckpt_periodic -> "CkptPer"
  | Ckpt_efficiency -> "CkptE"

let ckpt_strategy_of_string s =
  match String.lowercase_ascii s with
  | "ckptnvr" | "never" -> Some Ckpt_never
  | "ckptalws" | "always" -> Some Ckpt_always
  | "ckptw" | "weight" -> Some Ckpt_weight
  | "ckptc" | "cost" -> Some Ckpt_cost
  | "ckptd" | "outweight" -> Some Ckpt_outweight
  | "ckptper" | "periodic" -> Some Ckpt_periodic
  | "ckpte" | "efficiency" -> Some Ckpt_efficiency
  | _ -> None

type search = Exhaustive | Grid of int

let candidate_counts search ~n =
  if n <= 1 then []
  else
    let all = List.init (n - 1) (fun i -> i + 1) in
    match search with
    | Exhaustive -> all
    | Grid budget when n - 1 <= budget -> all
    | Grid budget ->
        if budget < 2 then invalid_arg "Heuristics: grid budget too small";
        (* half the budget spread geometrically (resolution where the
           makespan curve bends), half linearly (coverage of large N) *)
        let geo = budget / 2 and lin = budget - (budget / 2) in
        let module Iset = Set.Make (Int) in
        let acc = ref (Iset.of_list [ 1; n - 1 ]) in
        let top = float_of_int (n - 1) in
        for j = 0 to geo - 1 do
          let x = top ** (float_of_int j /. float_of_int (Int.max 1 (geo - 1))) in
          acc := Iset.add (Int.max 1 (int_of_float (Float.round x))) !acc
        done;
        for j = 0 to lin - 1 do
          let x = 1. +. (top -. 1.) *. float_of_int j /. float_of_int (Int.max 1 (lin - 1)) in
          acc := Iset.add (Int.max 1 (int_of_float (Float.round x))) !acc
        done;
        Iset.elements !acc

(* Order task ids by a strategy-specific key, best-to-checkpoint first; ties
   broken by id for determinism. *)
let ranked_tasks strategy g =
  let n = Wfc_dag.Dag.n_tasks g in
  let ids = Array.init n Fun.id in
  let key =
    match strategy with
    | Ckpt_weight -> fun v -> -.(Wfc_dag.Dag.task g v).Wfc_dag.Task.weight
    | Ckpt_cost -> fun v -> (Wfc_dag.Dag.task g v).Wfc_dag.Task.checkpoint_cost
    | Ckpt_outweight -> fun v -> -.Wfc_dag.Dag.outweight g v
    | Ckpt_efficiency ->
        (* extension: protected work per checkpoint second, decreasing *)
        fun v ->
          let t = Wfc_dag.Dag.task g v in
          -.(t.Wfc_dag.Task.weight
             /. Float.max 1e-9 t.Wfc_dag.Task.checkpoint_cost)
    | Ckpt_never | Ckpt_always | Ckpt_periodic ->
        invalid_arg "Heuristics.ranked_tasks: not a ranking strategy"
  in
  Array.sort
    (fun a b ->
      match Float.compare (key a) (key b) with
      | 0 -> Int.compare a b
      | c -> c)
    ids;
  ids

let periodic_flags g ~order ~n_ckpt =
  let n = Array.length order in
  let flags = Array.make n false in
  if n_ckpt >= 2 then begin
    let total = Wfc_dag.Dag.total_weight g in
    let period = total /. float_of_int n_ckpt in
    (* walk the failure-free timeline; checkpoint the first task completing
       at or after each threshold x * W / N *)
    let elapsed = ref 0. and next = ref 1 in
    Array.iter
      (fun v ->
        elapsed := !elapsed +. (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight;
        if !next < n_ckpt && !elapsed >= (float_of_int !next *. period) -. 1e-9
        then begin
          flags.(v) <- true;
          while
            !next < n_ckpt
            && !elapsed >= (float_of_int !next *. period) -. 1e-9
          do
            incr next
          done
        end)
      order
  end;
  flags

let checkpoint_flags strategy g ~order ~n_ckpt =
  let n = Wfc_dag.Dag.n_tasks g in
  if n_ckpt < 0 || n_ckpt > n then
    invalid_arg "Heuristics.checkpoint_flags: n_ckpt out of range";
  match strategy with
  | Ckpt_never -> Array.make n false
  | Ckpt_always -> Array.make n true
  | Ckpt_periodic -> periodic_flags g ~order ~n_ckpt
  | Ckpt_weight | Ckpt_cost | Ckpt_outweight | Ckpt_efficiency ->
      let ranked = ranked_tasks strategy g in
      let flags = Array.make n false in
      for j = 0 to n_ckpt - 1 do
        flags.(ranked.(j)) <- true
      done;
      flags

type outcome = {
  schedule : Schedule.t;
  makespan : float;
  n_ckpt : int;
  evaluations : int;
}

let name lin ckpt =
  Wfc_dag.Linearize.strategy_name lin ^ "-" ^ ckpt_strategy_name ckpt

module Metrics = Wfc_obs.Metrics

let m_search_runs = Metrics.counter "search.runs"
let m_candidates = Metrics.counter "search.candidates"

(* One registry lookup per run call (not per candidate); the per-strategy
   counter is created on first use. *)
let record_outcome ckpt (o : outcome) =
  if Metrics.enabled () then begin
    Metrics.incr m_search_runs;
    Metrics.add m_candidates o.evaluations;
    Metrics.add
      (Metrics.counter ("search.candidates." ^ ckpt_strategy_name ckpt))
      o.evaluations
  end;
  o

let run ?(search = Exhaustive) ?(backend = Eval_engine.Incremental) ?rand
    ?engine ?(cancel = Wfc_platform.Cancel.never) model g ~lin ~ckpt =
  Wfc_obs.Trace.with_span "heuristics.run" ~args:[ ("heuristic", name lin ckpt) ]
  @@ fun () ->
  record_outcome ckpt
  @@
  let poll () = Wfc_platform.Cancel.check cancel in
  poll ();
  let order = Wfc_dag.Linearize.run ?rand lin g in
  let evaluate flags =
    let sched = Schedule.make g ~order ~checkpointed:flags in
    (sched, Evaluator.expected_makespan model g sched)
  in
  match ckpt with
  | Ckpt_never | Ckpt_always ->
      let n = Wfc_dag.Dag.n_tasks g in
      let flags =
        Array.make n (match ckpt with Ckpt_always -> true | _ -> false)
      in
      let schedule, makespan = evaluate flags in
      { schedule; makespan; n_ckpt = Schedule.checkpoint_count schedule;
        evaluations = 1 }
  | Ckpt_weight | Ckpt_cost | Ckpt_outweight | Ckpt_periodic
  | Ckpt_efficiency ->
      let n = Wfc_dag.Dag.n_tasks g in
      let counts = candidate_counts search ~n in
      let counts = if counts = [] then [ 0 ] else counts in
      let evaluations = ref 0 in
      (* ranking strategies yield nested candidates and [candidate_counts]
         ascends, so the ranking is computed once and each candidate extends
         the previous flag vector in place instead of re-sorting the tasks
         per count. The shared vector is never stored: only the winning
         count is kept and its flags are rebuilt afterwards. *)
      let next_flags =
        match ckpt with
        | Ckpt_periodic -> fun n_ckpt -> periodic_flags g ~order ~n_ckpt
        | _ ->
            let ranked = ranked_tasks ckpt g in
            let flags = Array.make n false in
            let filled = ref 0 in
            fun n_ckpt ->
              while !filled < n_ckpt do
                flags.(ranked.(!filled)) <- true;
                incr filled
              done;
              flags
      in
      let best_n_ckpt =
        match backend with
        | Eval_engine.Naive ->
            let best = ref None in
            List.iter
              (fun n_ckpt ->
                poll ();
                let m = snd (evaluate (next_flags n_ckpt)) in
                incr evaluations;
                match !best with
                | Some (bm, _) when bm <= m -> ()
                | _ -> best := Some (m, n_ckpt))
              counts;
            snd (Option.get !best)
        | Eval_engine.Incremental | Eval_engine.Flat ->
            (* one engine across the sweep: consecutive candidate flag
               vectors differ in a handful of tasks, so each step costs a
               suffix re-evaluation instead of a full one. Flat and
               incremental handles score bit-identically, so the winner is
               backend-independent. A warm [engine] (the serving layer's
               LRU) skips the build; the sweep only ever sets whole flag
               vectors, so a warm engine scores every candidate bit-identically
               to a cold one whatever flags it was left holding. *)
            let engine =
              match engine with
              | Some h ->
                  if Eval_engine.h_order h <> order then
                    invalid_arg
                      "Heuristics.run: warm engine bound to another order";
                  Eval_engine.h_set_model h model;
                  h
              | None -> Eval_engine.handle backend model g ~order
            in
            let best = ref None in
            List.iter
              (fun n_ckpt ->
                poll ();
                Eval_engine.h_set_flags engine (next_flags n_ckpt);
                let m = Eval_engine.h_makespan engine in
                incr evaluations;
                match !best with
                | Some (bm, _) when bm <= m -> ()
                | _ -> best := Some (m, n_ckpt))
              counts;
            snd (Option.get !best)
      in
      let best_flags = checkpoint_flags ckpt g ~order ~n_ckpt:best_n_ckpt in
      (* the winner is re-evaluated through Evaluator so the reported
         makespan is the oracle's, whichever backend searched *)
      let schedule, makespan = evaluate best_flags in
      { schedule; makespan; n_ckpt = best_n_ckpt; evaluations = !evaluations }

(* ---- replication: the second resilience axis ---- *)

let m_replica_rounds = Metrics.counter "search.replica_rounds"

let replication_counts ?(max_replicas = 4) ?(cost = Replication.default_cost)
    ?(cancel = Wfc_platform.Cancel.never) spec model g ~sched =
  let n = Wfc_dag.Dag.n_tasks g in
  if max_replicas < 1 || max_replicas > Schedule.max_replicas then
    invalid_arg "Heuristics.replication_counts: max_replicas out of range";
  let weight v = (Wfc_dag.Dag.task g v).Wfc_dag.Task.weight in
  match spec with
  | Replication.No_replication -> Array.make n 1
  | Replication.Heavy k ->
      (* duplicate the k heaviest tasks: the ones whose lost-work intervals
         (and hence re-execution risk) dominate — the same ranking CkptW
         checkpoints first *)
      let reps = Array.make n 1 in
      let ranked = ranked_tasks Ckpt_weight g in
      for j = 0 to Int.min k n - 1 do
        reps.(ranked.(j)) <- Int.min 2 max_replicas
      done;
      reps
  | Replication.Auto | Replication.Budget _ ->
      let fraction = match spec with Replication.Budget f -> f | _ -> 0.2 in
      if not (fraction > 0. && Float.is_finite fraction) then
        invalid_arg "Heuristics.replication_counts: budget fraction";
      (* greedy marginal-gain spend: each round buy the single +1 replica
         with the best expected-makespan reduction per unit of extra work,
         until the budget (a fraction of total weight) is spent or no
         increment helps *)
      let budget = ref (fraction *. Wfc_dag.Dag.total_weight g) in
      let reps = Array.make n 1 in
      let score () =
        Replication.expected_makespan ~cost model g
          (Schedule.with_replicas sched reps)
      in
      let current = ref (score ()) in
      let improved = ref true and rounds = ref 0 in
      while !improved && !rounds < 32 do
        incr rounds;
        improved := false;
        let best = ref None in
        for v = 0 to n - 1 do
          Wfc_platform.Cancel.check cancel;
          let dc = cost *. weight v in
          if reps.(v) < max_replicas && dc <= !budget then begin
            reps.(v) <- reps.(v) + 1;
            let m = score () in
            reps.(v) <- reps.(v) - 1;
            let gain = !current -. m in
            if gain > 0. then begin
              let density = if dc > 0. then gain /. dc else Float.infinity in
              match !best with
              | Some (bd, _, _, _) when bd >= density -> ()
              | _ -> best := Some (density, v, m, dc)
            end
          end
        done;
        match !best with
        | Some (_, v, m, dc) ->
            reps.(v) <- reps.(v) + 1;
            budget := !budget -. dc;
            current := m;
            improved := true
        | None -> ()
      done;
      if Metrics.enabled () then Metrics.add m_replica_rounds !rounds;
      reps

let replicate ?max_replicas ?cost ?cancel spec model g (o : outcome) =
  match spec with
  | Replication.No_replication -> o
  | _ ->
      let reps =
        replication_counts ?max_replicas ?cost ?cancel spec model g
          ~sched:o.schedule
      in
      if Array.for_all (fun r -> r = 1) reps then o
      else
        let schedule = Schedule.with_replicas o.schedule reps in
        let makespan =
          Evaluator.expected_makespan ?replica_cost:cost model g schedule
        in
        { o with schedule; makespan; evaluations = o.evaluations + 1 }

let run_replicated ?search ?backend ?rand ?max_replicas ?cost ?cancel spec
    model g ~lin ~ckpt =
  replicate ?max_replicas ?cost ?cancel spec model g
    (run ?search ?backend ?rand ?cancel model g ~lin ~ckpt)

let best_over_linearizations ?search ?backend ?rand ?cancel model g ~ckpt =
  let outcomes =
    List.map
      (fun lin -> (lin, run ?search ?backend ?rand ?cancel model g ~lin ~ckpt))
      Wfc_dag.Linearize.all
  in
  List.fold_left
    (fun ((_, acc) as best) ((_, o) as cand) ->
      if o.makespan < acc.makespan then cand else best)
    (List.hd outcomes) (List.tl outcomes)
