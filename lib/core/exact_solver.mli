(** Exact checkpoint placement for a fixed linearization, by branch and
    bound.

    {!Brute_force.optimal_checkpoints_for_order} enumerates all [2^n]
    subsets; this solver reaches noticeably larger instances by exploiting
    two facts:

    - the expectation decomposes as [sum_i E\[X_i\]] where [E\[X_i\]] only
      depends on the checkpoint flags of positions [<= i], so flags can be
      fixed left to right with exact prefix costs;
    - [E\[X_i\] >= E\[t(w_i; 0; 0)\]] whatever the flags (see {!Bounds}),
      giving an admissible bound on any completion of a prefix.

    Still worst-case exponential — DAG-ChkptSched is NP-complete — but
    routinely solves 20-30 task instances, which is enough to audit the
    heuristics well beyond brute-force reach. *)

type solution = {
  schedule : Schedule.t;
  makespan : float;
  nodes : int;  (** search nodes expanded *)
}

exception Node_budget_exceeded

val optimal_checkpoints_within :
  ?max_nodes:int ->
  ?should_stop:(unit -> bool) ->
  ?cancel:Wfc_platform.Cancel.t ->
  ?backend:Eval_engine.backend ->
  ?domains:int ->
  ?dominance:bool ->
  ?memo:bool ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  solution * [ `Optimal | `Budget_exhausted ]
(** [optimal_checkpoints_within model g ~order] runs the branch and bound
    under a node budget and an optional caller-supplied stop predicate
    (polled periodically — e.g. a wall-clock deadline). Instead of raising
    when the budget runs out, it returns the best incumbent found so far
    tagged [`Budget_exhausted], so callers can degrade gracefully; the
    incumbent is never worse than the warm-start heuristics, hence always a
    finite, valid schedule. [`Optimal] certifies the search completed.

    [cancel] (default {!Wfc_platform.Cancel.never}) is polled at the same
    1024-node throttle as [should_stop] but aborts instead of degrading:
    a cancelled token makes the search raise
    {!Wfc_platform.Cancel.Cancelled} (on the [Flat] backend only after
    every worker domain has wound down and joined) rather than return the
    incumbent. Use [should_stop] for "give me your best under a budget",
    [cancel] for "stop computing, the caller no longer wants any answer".

    [backend] (default [Incremental]) selects how prefix costs are computed:
    an {!Eval_engine} cursor tracking the tree's flag assignments
    ({!Eval_engine.prefix_makespan} — [O(n)] per node), a full
    {!Evaluator.evaluate} per child ([Naive]), or the {!Flat_engine} kernel
    ([Flat]). The reported makespan is an oracle value in all cases.

    The remaining options apply to the [Flat] backend only (ignored
    otherwise):

    - [domains] (default [1]) explores root subtrees in parallel over
      {!Wfc_platform.Domain_pool}: the tree is split at a small depth into
      flag-prefix subtrees, self-scheduled across domains against a shared
      atomic incumbent. [should_stop] is then called from worker domains and
      must be thread-safe (a wall-clock deadline is).
    - [dominance] (default [true]) prunes children by two sound static
      rules: a task with no strict descendants is never checkpointed (its
      checkpoint is never read), and a task with zero checkpoint cost and
      recovery no larger than its weight is always checkpointed.
    - [memo] (default [true]) caches leaf completions keyed by a
      checkpoint-frontier signature (the flags of positions whose strict
      descendants cross the current depth) and re-evaluates them as
      warm-start incumbent candidates when an equal frontier recurs.

    With [~domains:1 ~dominance:false ~memo:false], the flat search expands
    exactly the same nodes in the same order as the sequential engine
    search — the parity configuration used by the test suite.

    @raise Invalid_argument if [order] is not a linearization of [g] or
      [domains < 1]. *)

val optimal_checkpoints :
  ?max_nodes:int ->
  ?cancel:Wfc_platform.Cancel.t ->
  ?backend:Eval_engine.backend ->
  ?domains:int ->
  ?dominance:bool ->
  ?memo:bool ->
  Wfc_platform.Failure_model.t ->
  Wfc_dag.Dag.t ->
  order:int array ->
  solution
(** [optimal_checkpoints model g ~order] finds the checkpoint set minimizing
    the expected makespan among all [2^n] subsets for the given
    linearization. Thin wrapper over {!optimal_checkpoints_within} that
    raises instead of returning an incumbent.

    @raise Node_budget_exceeded after [max_nodes] (default [1_000_000])
    expansions.
    @raise Invalid_argument if [order] is not a linearization of [g]. *)
