type result = {
  schedule : Schedule.t;
  makespan : float;
  initial_makespan : float;
  evaluations : int;
  flips : int;
}

module Metrics = Wfc_obs.Metrics

let m_runs = Metrics.counter "ls.runs"
let m_sweeps = Metrics.counter "ls.sweeps"
let m_moves_tried = Metrics.counter "ls.moves_tried"
let m_moves_accepted = Metrics.counter "ls.moves_accepted"

(* Flushed once per improve call, after the search loop. *)
let record_metrics ~sweeps r =
  if Metrics.enabled () then begin
    Metrics.incr m_runs;
    Metrics.add m_sweeps sweeps;
    Metrics.add m_moves_tried r.evaluations;
    Metrics.add m_moves_accepted r.flips
  end;
  r

(* Replica-aware hill climbing: the move set adds per-task replica-count
   steps (+1 up to the cap, -1 down to a single copy) next to the flag
   flips. Every candidate goes through the replication-aware oracle — the
   suffix engines do not support replica moves — so this path is only taken
   for replicated seeds or when replica moves are requested. *)
let improve_replicated ~max_evaluations ~replica_cost ~max_replicas ~cancel
    model g seed =
  Wfc_obs.Trace.with_span "local_search.improve"
    ~args:[ ("backend", "replicated") ]
  @@ fun () ->
  let n = Schedule.n_tasks seed in
  let cap =
    Option.value max_replicas
      ~default:(Int.max 4 (Schedule.max_replica_count seed))
  in
  if cap < 1 || cap > Schedule.max_replicas then
    invalid_arg "Local_search.improve: max_replicas out of range";
  let flags = Array.init n (Schedule.is_checkpointed seed) in
  let order = Array.init n (Schedule.task_at seed) in
  let reps = Schedule.replica_counts seed in
  let evaluations = ref 0 in
  let flips = ref 0 in
  let evaluate () =
    Wfc_platform.Cancel.check cancel;
    incr evaluations;
    Evaluator.expected_makespan ?replica_cost model g
      (Schedule.make ~replicas:reps g ~order ~checkpointed:flags)
  in
  let initial_makespan = evaluate () in
  let best = ref initial_makespan in
  let improved = ref true in
  let sweeps = ref 0 in
  (* try one move (already applied); keep it if it improves, else undo *)
  let consider undo =
    let m = evaluate () in
    if m < !best -. (1e-12 *. Float.abs !best) then begin
      best := m;
      incr flips;
      improved := true
    end
    else undo ()
  in
  while !improved && !evaluations < max_evaluations do
    improved := false;
    incr sweeps;
    Array.iter
      (fun v ->
        if !evaluations < max_evaluations then begin
          flags.(v) <- not flags.(v);
          consider (fun () -> flags.(v) <- not flags.(v))
        end;
        if !evaluations < max_evaluations && reps.(v) < cap then begin
          reps.(v) <- reps.(v) + 1;
          consider (fun () -> reps.(v) <- reps.(v) - 1)
        end;
        if !evaluations < max_evaluations && reps.(v) > 1 then begin
          reps.(v) <- reps.(v) - 1;
          consider (fun () -> reps.(v) <- reps.(v) + 1)
        end)
      order
  done;
  record_metrics ~sweeps:!sweeps
    {
      schedule = Schedule.make ~replicas:reps g ~order ~checkpointed:flags;
      makespan = !best;
      initial_makespan;
      evaluations = !evaluations;
      flips = !flips;
    }

let improve ?(max_evaluations = 4000) ?(backend = Eval_engine.Incremental)
    ?replica_cost ?max_replicas ?(cancel = Wfc_platform.Cancel.never) model g
    seed =
  if Schedule.is_replicated seed || Option.is_some max_replicas then
    improve_replicated ~max_evaluations ~replica_cost ~max_replicas ~cancel
      model g seed
  else
  Wfc_obs.Trace.with_span "local_search.improve"
    ~args:[ ("backend", Eval_engine.backend_name backend) ]
  @@ fun () ->
  let n = Schedule.n_tasks seed in
  let flags = Array.init n (Schedule.is_checkpointed seed) in
  let order = Array.init n (Schedule.task_at seed) in
  let evaluations = ref 0 in
  let flips = ref 0 in
  match backend with
  | Eval_engine.Naive ->
      let evaluate () =
        Wfc_platform.Cancel.check cancel;
        incr evaluations;
        Evaluator.expected_makespan model g
          (Schedule.make g ~order ~checkpointed:flags)
      in
      let initial_makespan = evaluate () in
      let best = ref initial_makespan in
      let improved = ref true in
      let sweeps = ref 0 in
      while !improved && !evaluations < max_evaluations do
        improved := false;
        incr sweeps;
        (* sweep in execution order: early flags influence everything after *)
        Array.iter
          (fun v ->
            if !evaluations < max_evaluations then begin
              flags.(v) <- not flags.(v);
              let m = evaluate () in
              if m < !best -. (1e-12 *. Float.abs !best) then begin
                best := m;
                incr flips;
                improved := true
              end
              else flags.(v) <- not flags.(v)
            end)
          order
      done;
      record_metrics ~sweeps:!sweeps
        {
          schedule = Schedule.make g ~order ~checkpointed:flags;
          makespan = !best;
          initial_makespan;
          evaluations = !evaluations;
          flips = !flips;
        }
  | Eval_engine.Incremental | Eval_engine.Flat ->
      let engine = Eval_engine.handle ~flags backend model g ~order in
      let initial_makespan =
        Evaluator.expected_makespan model g
          (Schedule.make g ~order ~checkpointed:flags)
      in
      incr evaluations;
      (* decisions run on engine values throughout; only the reported
         makespans go through the oracle. Flat and incremental handles score
         bit-identically, so the accepted move sequence is the same *)
      let best = ref (Eval_engine.h_makespan engine) in
      let improved = ref true in
      let sweeps = ref 0 in
      while !improved && !evaluations < max_evaluations do
        improved := false;
        incr sweeps;
        Array.iter
          (fun v ->
            if !evaluations < max_evaluations then begin
              Wfc_platform.Cancel.check cancel;
              let m = Eval_engine.h_flip engine v in
              incr evaluations;
              if m < !best -. (1e-12 *. Float.abs !best) then begin
                best := m;
                flags.(v) <- not flags.(v);
                incr flips;
                improved := true
              end
              else
                (* lazy revert: marks the same suffix dirty again without
                   forcing a re-evaluation *)
                Eval_engine.h_set_flags engine flags
            end)
          order
      done;
      let schedule = Schedule.make g ~order ~checkpointed:flags in
      let makespan =
        if !flips = 0 then initial_makespan
        else Evaluator.expected_makespan model g schedule
      in
      record_metrics ~sweeps:!sweeps
        { schedule; makespan; initial_makespan; evaluations = !evaluations;
          flips = !flips }
