type result = {
  schedule : Schedule.t;
  makespan : float;
  initial_makespan : float;
  evaluations : int;
  flips : int;
}

let improve ?(max_evaluations = 4000) ?(backend = Eval_engine.Incremental)
    model g seed =
  let n = Schedule.n_tasks seed in
  let flags = Array.init n (Schedule.is_checkpointed seed) in
  let order = Array.init n (Schedule.task_at seed) in
  let evaluations = ref 0 in
  let flips = ref 0 in
  match backend with
  | Eval_engine.Naive ->
      let evaluate () =
        incr evaluations;
        Evaluator.expected_makespan model g
          (Schedule.make g ~order ~checkpointed:flags)
      in
      let initial_makespan = evaluate () in
      let best = ref initial_makespan in
      let improved = ref true in
      while !improved && !evaluations < max_evaluations do
        improved := false;
        (* sweep in execution order: early flags influence everything after *)
        Array.iter
          (fun v ->
            if !evaluations < max_evaluations then begin
              flags.(v) <- not flags.(v);
              let m = evaluate () in
              if m < !best -. (1e-12 *. Float.abs !best) then begin
                best := m;
                incr flips;
                improved := true
              end
              else flags.(v) <- not flags.(v)
            end)
          order
      done;
      {
        schedule = Schedule.make g ~order ~checkpointed:flags;
        makespan = !best;
        initial_makespan;
        evaluations = !evaluations;
        flips = !flips;
      }
  | Eval_engine.Incremental ->
      let engine = Eval_engine.create ~flags model g ~order in
      let initial_makespan =
        Evaluator.expected_makespan model g
          (Schedule.make g ~order ~checkpointed:flags)
      in
      incr evaluations;
      (* decisions run on engine values throughout; only the reported
         makespans go through the oracle *)
      let best = ref (Eval_engine.makespan engine) in
      let improved = ref true in
      while !improved && !evaluations < max_evaluations do
        improved := false;
        Array.iter
          (fun v ->
            if !evaluations < max_evaluations then begin
              let m = Eval_engine.flip engine v in
              incr evaluations;
              if m < !best -. (1e-12 *. Float.abs !best) then begin
                best := m;
                flags.(v) <- not flags.(v);
                incr flips;
                improved := true
              end
              else
                (* lazy revert: marks the same suffix dirty again without
                   forcing a re-evaluation *)
                Eval_engine.set_flags engine flags
            end)
          order
      done;
      let schedule = Schedule.make g ~order ~checkpointed:flags in
      let makespan =
        if !flips = 0 then initial_makespan
        else Evaluator.expected_makespan model g schedule
      in
      { schedule; makespan; initial_makespan; evaluations = !evaluations;
        flips = !flips }
