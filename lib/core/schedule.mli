(** Schedules: a linearization of the DAG plus checkpoint decisions and
    per-task replica counts.

    Following the paper, a schedule fully determines the fault-tolerant
    execution: tasks run in linearization order on the whole platform, the
    flagged tasks checkpoint their output on completion, and recovery after a
    failure replays the lost, still-needed part of the schedule from the most
    recent checkpoints. The replica counts extend the paper's policy space
    (Setlur et al., arXiv:1810.06361): a task with [r] replicas runs [r]
    independent copies of its segment, and the interval is only lost when all
    [r] copies fail inside it. [replicas = all-ones] is exactly the paper's
    model and keeps every evaluation and simulation path bit-identical. *)

type t = private {
  order : int array;  (** [order.(p)] is the task executed at position [p] *)
  checkpointed : bool array;  (** indexed by task id, not by position *)
  replicas : int array;
      (** indexed by task id; every count is in [1..max_replicas] *)
}

val max_replicas : int
(** Upper bound on a per-task replica count (8): beyond it the failure
    algebra's alternating binomial sums degrade and the surcharge makes
    replication useless anyway. *)

val make :
  ?replicas:int array ->
  Wfc_dag.Dag.t ->
  order:int array ->
  checkpointed:bool array ->
  t
(** [make g ~order ~checkpointed] validates that [order] is a linearization
    of [g] (see {!Wfc_dag.Dag.is_linearization}) and that [checkpointed] has
    one flag per task. [replicas] (one count per task id, each in
    [1..max_replicas]) defaults to all-ones — the paper's unreplicated
    model.

    @raise Invalid_argument otherwise. The arrays are copied. *)

val of_positions :
  Wfc_dag.Dag.t -> order:int array -> ckpt_positions:int list -> t
(** Same, with checkpoints given as positions in the linearization instead of
    task ids (and no replication). *)

val n_tasks : t -> int

val task_at : t -> int -> int
(** [task_at s p] is the task executed at position [p]. *)

val position_of : t -> int -> int
(** [position_of s v] is the position of task [v]; inverse of {!task_at}. *)

val is_checkpointed : t -> int -> bool
(** [is_checkpointed s v] tells whether {e task} [v] checkpoints its
    output. *)

val checkpoint_count : t -> int

val checkpointed_tasks : t -> int list
(** Ids of checkpointed tasks, in execution order. *)

val replicas_of : t -> int -> int
(** [replicas_of s v] is the replica count of {e task} [v] (1 = not
    replicated). *)

val replica_counts : t -> int array
(** A copy of the per-task replica counts, indexed by task id. *)

val is_replicated : t -> bool
(** Whether any task has more than one replica. The unreplicated case is
    what every evaluator and simulator fast path dispatches on. *)

val extra_replicas : t -> int
(** Total number of extra copies placed: [sum_v (r_v - 1)]. *)

val max_replica_count : t -> int
(** Largest per-task replica count — the number of failure lanes a
    simulation of this schedule needs. *)

val with_checkpoints : t -> bool array -> t
(** Replace the checkpoint flags (indexed by task id).
    @raise Invalid_argument on size mismatch. *)

val with_replicas : t -> int array -> t
(** Replace the replica counts (indexed by task id).
    @raise Invalid_argument on size mismatch or a count outside
    [1..max_replicas]. *)

val no_checkpoints : Wfc_dag.Dag.t -> order:int array -> t
val all_checkpoints : Wfc_dag.Dag.t -> order:int array -> t

val pp : Format.formatter -> t -> unit
(** Prints e.g. ["T0 T3* T1 T2 T4*"] where [*] marks checkpointed tasks;
    replicated tasks carry an [xR] suffix, e.g. ["T3*x2"]. *)
