type t = Proportional of float | Constant of float

let name = function
  | Proportional f -> Printf.sprintf "c=%gw" f
  | Constant c -> Printf.sprintf "c=%gs" c

let of_string s =
  let s =
    if String.length s > 2 && String.sub s 0 2 = "c=" then
      String.sub s 2 (String.length s - 2)
    else s
  in
  let n = String.length s in
  if n < 2 then None
  else
    match (float_of_string_opt (String.sub s 0 (n - 1)), s.[n - 1]) with
    | Some f, 'w' when f >= 0. && Float.is_finite f -> Some (Proportional f)
    | Some c, 's' when c >= 0. && Float.is_finite c -> Some (Constant c)
    | _ -> None

let checkpoint_cost t ~weight =
  match t with Proportional f -> f *. weight | Constant c -> c

let apply ?(recovery_factor = 1.) t g =
  Wfc_dag.Dag.map_tasks
    (fun task ->
      let c = checkpoint_cost t ~weight:task.Wfc_dag.Task.weight in
      Wfc_dag.Task.with_costs task ~checkpoint_cost:c
        ~recovery_cost:(recovery_factor *. c))
    g

let is_costed g =
  let n = Wfc_dag.Dag.n_tasks g in
  let rec go i =
    i < n
    &&
    let t = Wfc_dag.Dag.task g i in
    t.Wfc_dag.Task.checkpoint_cost <> 0.
    || t.Wfc_dag.Task.recovery_cost <> 0.
    || go (i + 1)
  in
  go 0

let ensure ?recovery_factor t g =
  if is_costed g then g else apply ?recovery_factor t g
