(** Checkpoint/recovery cost models of the evaluation section.

    The paper evaluates proportional costs ([c_i = 0.1 w_i], [c_i = 0.01
    w_i]) and constant costs ([c_i = 5 s], [c_i = 10 s]), always with
    [r_i = c_i]. *)

type t =
  | Proportional of float  (** [c_i = factor *. w_i] *)
  | Constant of float  (** [c_i = cost] for every task *)

val name : t -> string
(** e.g. ["c=0.1w"] or ["c=5s"]. *)

val of_string : string -> t option
(** Parses the compact syntax used on the command line: ["0.1w"] (or
    ["c=0.1w"]) for proportional costs, ["5s"] (or ["c=5s"]) for constant
    costs. Negative factors and costs are rejected. *)

val checkpoint_cost : t -> weight:float -> float

val apply : ?recovery_factor:float -> t -> Wfc_dag.Dag.t -> Wfc_dag.Dag.t
(** [apply m g] returns [g] with every task's checkpoint cost set by [m] and
    recovery cost set to [recovery_factor] (default [1.]) times the
    checkpoint cost. *)

val is_costed : Wfc_dag.Dag.t -> bool
(** Whether any task carries a nonzero checkpoint or recovery cost. Workflow
    files that predate checkpointing (Pegasus DAX, WfCommons instances)
    decode with all costs zero; files written by this project carry them. *)

val ensure : ?recovery_factor:float -> t -> Wfc_dag.Dag.t -> Wfc_dag.Dag.t
(** [ensure m g] is [apply m g] when [g] is uncosted and [g] unchanged
    otherwise — the mapping from raw file runtimes to schedulable
    weights/costs used when ingesting mixed-provenance corpora. *)
