(** One front door for every workflow file format.

    The corpus tooling ingests directories of user-supplied workflow files
    in whatever format they come: Pegasus DAX XML ({!Dax}), WfCommons
    instance JSON ({!Wfcommons}) or this project's native JSON
    ({!Workflow_format}). This module sniffs the format and dispatches, with
    one hard contract: {!load} and {!load_string} {b never raise}, whatever
    the bytes — unreadable files, truncated documents, malformed markup,
    cyclic edge lists, duplicate ids and NaN or negative weights all come
    back as [Error msg] with [msg] naming the input and the offending
    element. Every successful decode passed through {!Wfc_dag.Dag.create},
    so a loaded DAG satisfies exactly the invariants of a constructed one. *)

type format =
  | Dax  (** Pegasus DAX XML ([<adag>] root) *)
  | Wfcommons  (** WfCommons instance JSON (["workflow"] wrapper object) *)
  | Native  (** this project's JSON (top-level ["tasks"] / ["edges"]) *)

val format_name : format -> string
(** ["dax"], ["wfcommons"] or ["json"]. *)

val sniff : string -> format option
(** Guess the format of raw file contents: a leading ['<'] means DAX;
    otherwise the contents must parse as JSON, a top-level ["workflow"]
    member meaning WfCommons and anything else the native format. [None]
    when the contents are neither XML-ish nor valid JSON. *)

val load_string : ?path:string -> string -> (Wfc_dag.Dag.t, string) result
(** Decode raw contents, sniffing the format. [path] (default
    ["<string>"]) prefixes error messages. Never raises. *)

val load : string -> (Wfc_dag.Dag.t, string) result
(** Read and decode a workflow file, sniffing the format. Never raises;
    error messages are prefixed with the path. *)

val load_with_format : string -> (format * Wfc_dag.Dag.t, string) result
(** {!load}, also reporting which format was detected. *)

val extensions : string list
(** Filename extensions recognized as workflow files when scanning a
    directory: [[".dax"; ".xml"; ".json"]]. *)

val is_workflow_file : string -> bool
(** Whether the filename carries one of {!extensions}. *)
