type t = Element of string * (string * string) list * t list | Text of string

exception Parse_error of int * string

(* ---- rendering ---- *)

let escape ~attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' when attr -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string root =
  let buf = Buffer.create 1024 in
  let rec emit depth node =
    let pad = String.make (2 * depth) ' ' in
    match node with
    | Text s ->
        let trimmed = String.trim s in
        if trimmed <> "" then begin
          Buffer.add_string buf pad;
          Buffer.add_string buf (escape ~attr:false trimmed);
          Buffer.add_char buf '\n'
        end
    | Element (name, attrs, kids) ->
        Buffer.add_string buf pad;
        Buffer.add_char buf '<';
        Buffer.add_string buf name;
        List.iter
          (fun (k, v) ->
            Buffer.add_string buf
              (Printf.sprintf " %s=\"%s\"" k (escape ~attr:true v)))
          attrs;
        if kids = [] then Buffer.add_string buf "/>\n"
        else begin
          Buffer.add_string buf ">\n";
          List.iter (emit (depth + 1)) kids;
          Buffer.add_string buf pad;
          Buffer.add_string buf (Printf.sprintf "</%s>\n" name)
        end
  in
  emit 0 root;
  Buffer.contents buf

(* ---- parsing ---- *)

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let looking_at prefix =
    let m = String.length prefix in
    !pos + m <= n && String.sub s !pos m = prefix
  in
  let skip m = pos := !pos + m in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        incr pos;
        skip_ws ()
    | _ -> ()
  in
  let find_forward marker =
    let m = String.length marker in
    let rec go i =
      if i + m > n then error (Printf.sprintf "expected %s" marker)
      else if String.sub s i m = marker then i
      else go (i + 1)
    in
    go !pos
  in
  let is_name_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
    | _ -> false
  in
  let parse_name () =
    let start = !pos in
    while (match peek () with Some c -> is_name_char c | None -> false) do
      incr pos
    done;
    if !pos = start then error "expected a name";
    String.sub s start (!pos - start)
  in
  let decode_entities raw =
    let buf = Buffer.create (String.length raw) in
    let m = String.length raw in
    let i = ref 0 in
    while !i < m do
      if raw.[!i] = '&' then begin
        match String.index_from_opt raw !i ';' with
        | None -> error "unterminated entity"
        | Some j ->
            let entity = String.sub raw (!i + 1) (j - !i - 1) in
            (match entity with
            | "lt" -> Buffer.add_char buf '<'
            | "gt" -> Buffer.add_char buf '>'
            | "amp" -> Buffer.add_char buf '&'
            | "quot" -> Buffer.add_char buf '"'
            | "apos" -> Buffer.add_char buf '\''
            | e when String.length e > 1 && e.[0] = '#' ->
                let code =
                  if e.[1] = 'x' || e.[1] = 'X' then
                    int_of_string_opt ("0x" ^ String.sub e 2 (String.length e - 2))
                  else int_of_string_opt (String.sub e 1 (String.length e - 1))
                in
                (match code with
                | Some c when c >= 0 && c < 0x80 ->
                    Buffer.add_char buf (Char.chr c)
                | Some c when c >= 0 && c <= 0x10FFFF ->
                    Buffer.add_string buf "?"
                | Some _ | None -> error "bad character reference")
            | _ -> error "unknown entity");
            i := j + 1
      end
      else begin
        Buffer.add_char buf raw.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  in
  let parse_attrs () =
    let attrs = ref [] in
    let rec go () =
      skip_ws ();
      match peek () with
      | Some c when is_name_char c ->
          let key = parse_name () in
          skip_ws ();
          if peek () <> Some '=' then error "expected = after attribute name";
          incr pos;
          skip_ws ();
          let quote =
            match peek () with
            | Some (('"' | '\'') as q) ->
                incr pos;
                q
            | _ -> error "expected quoted attribute value"
          in
          let close =
            match String.index_from_opt s !pos quote with
            | Some i -> i
            | None -> error "unterminated attribute value"
          in
          let raw = String.sub s !pos (close - !pos) in
          pos := close + 1;
          attrs := (key, decode_entities raw) :: !attrs;
          go ()
      | _ -> List.rev !attrs
    in
    go ()
  in
  let rec skip_misc () =
    skip_ws ();
    if looking_at "<?" then begin
      pos := find_forward "?>" + 2;
      skip_misc ()
    end
    else if looking_at "<!--" then begin
      pos := find_forward "-->" + 3;
      skip_misc ()
    end
    else if looking_at "<!DOCTYPE" then error "DTDs are not supported"
  in
  (* a depth cap keeps adversarial inputs (<a><a><a>... ad infinitum) from
     turning the recursive descent into a stack overflow *)
  let max_depth = 512 in
  let rec parse_element depth =
    if depth > max_depth then error "element nesting too deep";
    if peek () <> Some '<' then error "expected <";
    incr pos;
    let name = parse_name () in
    let attrs = parse_attrs () in
    skip_ws ();
    if looking_at "/>" then begin
      skip 2;
      Element (name, attrs, [])
    end
    else if peek () = Some '>' then begin
      incr pos;
      let kids = parse_children depth name in
      Element (name, attrs, kids)
    end
    else error "malformed tag"
  and parse_children depth parent =
    let kids = ref [] in
    let rec go () =
      if !pos >= n then error (Printf.sprintf "unterminated <%s>" parent);
      if looking_at "</" then begin
        skip 2;
        let closing = parse_name () in
        if closing <> parent then
          error (Printf.sprintf "mismatched </%s> inside <%s>" closing parent);
        skip_ws ();
        if peek () <> Some '>' then error "malformed closing tag";
        incr pos
      end
      else if looking_at "<!--" then begin
        pos := find_forward "-->" + 3;
        go ()
      end
      else if looking_at "<![CDATA[" then begin
        skip 9;
        let close = find_forward "]]>" in
        kids := Text (String.sub s !pos (close - !pos)) :: !kids;
        pos := close + 3;
        go ()
      end
      else if peek () = Some '<' then begin
        kids := parse_element (depth + 1) :: !kids;
        go ()
      end
      else begin
        let next =
          match String.index_from_opt s !pos '<' with
          | Some i -> i
          | None -> n
        in
        let raw = String.sub s !pos (next - !pos) in
        pos := next;
        if String.trim raw <> "" then kids := Text (decode_entities raw) :: !kids;
        go ()
      end
    in
    go ();
    List.rev !kids
  in
  match
    skip_misc ();
    let root = parse_element 0 in
    skip_misc ();
    skip_ws ();
    if !pos <> n then error "trailing content after the root element";
    root
  with
  | root -> Ok root
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "XML parse error at offset %d: %s" at msg)

(* ---- accessors ---- *)

let name = function Element (n, _, _) -> Some n | Text _ -> None
let attr key = function
  | Element (_, attrs, _) -> List.assoc_opt key attrs
  | Text _ -> None

let children = function Element (_, _, kids) -> kids | Text _ -> []

let elements ?named node =
  List.filter
    (fun k ->
      match (k, named) with
      | Element (n, _, _), Some expect -> n = expect
      | Element _, None -> true
      | Text _, _ -> false)
    (children node)

let rec text_content = function
  | Text s -> s
  | Element (_, _, kids) -> String.concat "" (List.map text_content kids)
