type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ---- printing ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let to_string ?(minify = false) t =
  let buf = Buffer.create 256 in
  let indent depth =
    if not minify then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * depth) ' ')
    end
  in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Number x -> Buffer.add_string buf (number_to_string x)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            emit (depth + 1) item)
          items;
        indent depth;
        Buffer.add_char buf ']'
    | Assoc [] -> Buffer.add_string buf "{}"
    | Assoc fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            indent (depth + 1);
            escape_string buf k;
            Buffer.add_string buf (if minify then ":" else ": ");
            emit (depth + 1) v)
          fields;
        indent depth;
        Buffer.add_char buf '}'
  in
  emit 0 t;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect_word w value =
    if !pos + String.length w <= n && String.sub s !pos (String.length w) = w
    then begin
      pos := !pos + String.length w;
      value
    end
    else error (Printf.sprintf "expected %s" w)
  in
  let parse_hex4 () =
    if !pos + 4 > n then error "truncated \\u escape";
    let h = String.sub s !pos 4 in
    pos := !pos + 4;
    match int_of_string_opt ("0x" ^ h) with
    | Some code -> code
    | None -> error "invalid \\u escape"
  in
  let utf8_of_code buf code =
    (* BMP only; surrogate pairs are recombined by the caller *)
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
              advance ();
              let code = parse_hex4 () in
              let code =
                if code >= 0xD800 && code <= 0xDBFF then begin
                  (* high surrogate: a low surrogate must follow *)
                  expect '\\';
                  expect 'u';
                  let low = parse_hex4 () in
                  if low < 0xDC00 || low > 0xDFFF then
                    error "invalid surrogate pair";
                  0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
                end
                else code
              in
              utf8_of_code buf code
          | _ -> error "invalid escape");
          go ())
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_number_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> error "invalid number"
  in
  (* a depth cap keeps adversarial inputs ([[[[... ad infinitum) from
     turning the recursive descent into a stack overflow *)
  let max_depth = 512 in
  let rec parse_value depth =
    if depth > max_depth then error "value nesting too deep";
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let value = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((key, value) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, value) :: acc)
            | _ -> error "expected , or }"
          in
          Assoc (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let value = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (value :: acc)
            | Some ']' ->
                advance ();
                List.rev (value :: acc)
            | _ -> error "expected , or ]"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> expect_word "true" (Bool true)
    | Some 'f' -> expect_word "false" (Bool false)
    | Some 'n' -> expect_word "null" Null
    | Some ('-' | '0' .. '9') -> Number (parse_number ())
    | Some c -> error (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then error "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" at msg)

(* ---- accessors ---- *)

let member key = function
  | Assoc fields -> (
      match List.assoc_opt key fields with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" key))
  | _ -> Error (Printf.sprintf "expected an object with field %S" key)

let to_float = function
  | Number x -> Ok x
  | _ -> Error "expected a number"

let to_int = function
  | Number x when Float.is_integer x -> Ok (int_of_float x)
  | Number _ -> Error "expected an integer"
  | _ -> Error "expected a number"

let to_list = function
  | List l -> Ok l
  | _ -> Error "expected an array"

let to_string_value = function
  | String s -> Ok s
  | _ -> Error "expected a string"

let ( let* ) = Result.bind
