open Json

let ( let* ) = Result.bind

let task_key i = Printf.sprintf "ID%07d" i

(* ---- export ---- *)

let to_json ?(name = "workflow") g =
  let n = Wfc_dag.Dag.n_tasks g in
  let refs l = List (Stdlib.List.map (fun v -> String (task_key v)) l) in
  let tasks =
    Stdlib.List.init n (fun i ->
        let t = Wfc_dag.Dag.task g i in
        Assoc
          [
            ("name", String (task_key i));
            ("label", String t.Wfc_dag.Task.label);
            ("type", String "compute");
            ("runtimeInSeconds", Number t.Wfc_dag.Task.weight);
            ("checkpointCost", Number t.Wfc_dag.Task.checkpoint_cost);
            ("recoveryCost", Number t.Wfc_dag.Task.recovery_cost);
            ("parents", refs (Wfc_dag.Dag.preds g i));
            ("children", refs (Wfc_dag.Dag.succs g i));
          ])
  in
  Assoc
    [
      ("name", String name);
      ("schemaVersion", String "1.4");
      ("workflow", Assoc [ ("tasks", List tasks) ]);
    ]

(* ---- import ---- *)

let string_member key j =
  Result.bind (member key j) to_string_value

(* the human-readable handle used in error messages: the task's name if it
   has one, otherwise its position in the document *)
let handle i j =
  match string_member "name" j with
  | Ok name -> Printf.sprintf "task %S" name
  | Error _ -> Printf.sprintf "task #%d" i

let fail fmt = Printf.ksprintf (fun msg -> Error ("WfCommons: " ^ msg)) fmt

let fold_tasks f init tasks =
  let rec go acc i = function
    | [] -> Ok acc
    | j :: rest ->
        let* acc = f acc i j in
        go acc (i + 1) rest
  in
  go init 0 tasks

let of_json root =
  let* wf =
    match member "workflow" root with
    | Ok wf -> Ok wf
    | Error _ -> fail "missing \"workflow\" object"
  in
  let* task_list =
    match (member "tasks" wf, member "jobs" wf) with
    | Ok l, _ | Error _, Ok l -> (
        match to_list l with
        | Ok l -> Ok l
        | Error _ -> fail "\"tasks\" must be an array")
    | Error _, Error _ -> fail "workflow has neither \"tasks\" nor \"jobs\""
  in
  if task_list = [] then fail "no tasks"
  else begin
    let n = Stdlib.List.length task_list in
    let index = Hashtbl.create n in
    let register i key =
      match Hashtbl.find_opt index key with
      | Some j when j <> i -> fail "duplicate task identifier %S" key
      | _ ->
          Hashtbl.replace index key i;
          Ok ()
    in
    (* pass 1: register every task's name (and id, when distinct) so forward
       parent references resolve *)
    let* () =
      fold_tasks
        (fun () i j ->
          let* key =
            match (string_member "name" j, string_member "id" j) with
            | Ok name, _ -> Ok name
            | Error _, Ok id -> Ok id
            | Error _, Error _ -> fail "%s has no \"name\"" (handle i j)
          in
          let* () = register i key in
          match string_member "id" j with
          | Ok id when id <> key -> register i id
          | _ -> Ok ())
        () task_list
    in
    (* pass 2: decode tasks through the Task.make validation *)
    let* tasks_rev =
      fold_tasks
        (fun acc i j ->
          let* weight =
            match
              (member "runtimeInSeconds" j, member "runtime" j)
            with
            | Ok v, _ | Error _, Ok v -> (
                match to_float v with
                | Ok w -> Ok w
                | Error _ -> fail "%s: runtime must be a number" (handle i j))
            | Error _, Error _ -> fail "%s has no runtime" (handle i j)
          in
          let opt_float key =
            match Result.bind (member key j) to_float with
            | Ok x -> x
            | Error _ -> 0.
          in
          let label =
            match (string_member "label" j, string_member "name" j) with
            | Ok l, _ | Error _, Ok l -> Some l
            | Error _, Error _ -> None
          in
          match
            Wfc_dag.Task.make ~id:i ?label ~weight
              ~checkpoint_cost:(opt_float "checkpointCost")
              ~recovery_cost:(opt_float "recoveryCost")
              ()
          with
          | t -> Ok (t :: acc)
          | exception Invalid_argument msg ->
              fail "%s: %s" (handle i j) msg)
        [] task_list
    in
    let tasks = Array.of_list (Stdlib.List.rev tasks_rev) in
    (* pass 3: edges from both directions, duplicates collapsed *)
    let edge_set = Hashtbl.create 64 in
    let edges = ref [] in
    let add_edge u v =
      if not (Hashtbl.mem edge_set (u, v)) then begin
        Hashtbl.add edge_set (u, v) ();
        edges := (u, v) :: !edges
      end
    in
    let resolve i j kind key =
      match Hashtbl.find_opt index key with
      | Some v -> Ok v
      | None -> fail "%s: unknown %s %S" (handle i j) kind key
    in
    let* () =
      fold_tasks
        (fun () i j ->
          let refs kind =
            match member kind j with
            | Error _ | Ok Null -> Ok [] (* absent: no edges contributed *)
            | Ok v -> (
                match to_list v with
                | Ok l -> Ok l
                | Error _ ->
                    fail "%s: %S must be an array" (handle i j) kind)
          in
          let* parents = refs "parents" in
          let* () =
            fold_tasks
              (fun () _ r ->
                match to_string_value r with
                | Ok key ->
                    let* p = resolve i j "parent" key in
                    add_edge p i;
                    Ok ()
                | Error _ ->
                    fail "%s: parent references must be strings" (handle i j))
              () parents
          in
          let* children = refs "children" in
          fold_tasks
            (fun () _ r ->
              match to_string_value r with
              | Ok key ->
                  let* c = resolve i j "child" key in
                  add_edge i c;
                  Ok ()
              | Error _ ->
                  fail "%s: child references must be strings" (handle i j))
            () children)
        () task_list
    in
    match Wfc_dag.Dag.create ~tasks ~edges:!edges with
    | g -> Ok g
    | exception Invalid_argument msg -> fail "%s" msg
  end

(* ---- files ---- *)

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents ->
      let* j = of_string contents in
      of_json j

let save ?name path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string (to_json ?name g));
      output_char oc '\n')
