let ( let* ) = Result.bind

let job_id i = Printf.sprintf "ID%07d" i

let of_xml root =
  let* () =
    match Xml.name root with
    | Some "adag" -> Ok ()
    | _ -> Error "DAX: root element must be <adag>"
  in
  let jobs = Xml.elements ~named:"job" root in
  if jobs = [] then Error "DAX: no <job> elements"
  else begin
    let index = Hashtbl.create (List.length jobs) in
    let* tasks =
      List.fold_left
        (fun acc job ->
          let* acc = acc in
          let i = List.length acc in
          let* id =
            match Xml.attr "id" job with
            | Some id -> Ok id
            | None -> Error "DAX: <job> without id"
          in
          if Hashtbl.mem index id then
            Error (Printf.sprintf "DAX: duplicate job id %s" id)
          else begin
            Hashtbl.add index id i;
            let* weight =
              match Xml.attr "runtime" job with
              | Some r -> (
                  match float_of_string_opt r with
                  | Some w when w >= 0. -> Ok w
                  | _ -> Error (Printf.sprintf "DAX: bad runtime for %s" id)
                  )
              | None -> Error (Printf.sprintf "DAX: job %s has no runtime" id)
            in
            let label =
              match Xml.attr "name" job with Some n -> n | None -> id
            in
            match Wfc_dag.Task.make ~id:i ~label ~weight () with
            | t -> Ok (t :: acc)
            | exception Invalid_argument m -> Error m
          end)
        (Ok []) jobs
    in
    let tasks = Array.of_list (List.rev tasks) in
    let resolve id =
      match Hashtbl.find_opt index id with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "DAX: unknown job reference %s" id)
    in
    let* edges =
      List.fold_left
        (fun acc child ->
          let* acc = acc in
          let* c =
            match Xml.attr "ref" child with
            | Some id -> resolve id
            | None -> Error "DAX: <child> without ref"
          in
          List.fold_left
            (fun acc parent ->
              let* acc = acc in
              let* p =
                match Xml.attr "ref" parent with
                | Some id -> resolve id
                | None -> Error "DAX: <parent> without ref"
              in
              Ok ((p, c) :: acc))
            (Ok acc)
            (Xml.elements ~named:"parent" child))
        (Ok [])
        (Xml.elements ~named:"child" root)
    in
    match Wfc_dag.Dag.create ~tasks ~edges with
    | g -> Ok g
    | exception Invalid_argument m -> Error ("DAX: " ^ m)
  end

let to_xml ?(name = "workflow") g =
  let n = Wfc_dag.Dag.n_tasks g in
  let jobs =
    List.init n (fun i ->
        let t = Wfc_dag.Dag.task g i in
        Xml.Element
          ( "job",
            [
              ("id", job_id i);
              ("name", t.Wfc_dag.Task.label);
              ("runtime", Printf.sprintf "%.17g" t.Wfc_dag.Task.weight);
            ],
            [] ))
  in
  let children =
    List.filter_map
      (fun v ->
        match Wfc_dag.Dag.preds g v with
        | [] -> None
        | preds ->
            Some
              (Xml.Element
                 ( "child",
                   [ ("ref", job_id v) ],
                   List.map
                     (fun p -> Xml.Element ("parent", [ ("ref", job_id p) ], []))
                     preds )))
      (List.init n Fun.id)
  in
  Xml.Element ("adag", [ ("name", name) ], jobs @ children)

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents ->
      let* xml = Xml.of_string contents in
      of_xml xml

let save ?name path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Xml.to_string (to_xml ?name g)))
