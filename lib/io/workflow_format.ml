open Json

let dag_to_json ?(name = "workflow") g =
  let tasks =
    List.init (Wfc_dag.Dag.n_tasks g) (fun i ->
        let t = Wfc_dag.Dag.task g i in
        Assoc
          [
            ("id", Number (float_of_int t.Wfc_dag.Task.id));
            ("label", String t.Wfc_dag.Task.label);
            ("weight", Number t.Wfc_dag.Task.weight);
            ("checkpoint_cost", Number t.Wfc_dag.Task.checkpoint_cost);
            ("recovery_cost", Number t.Wfc_dag.Task.recovery_cost);
          ])
  in
  let edges =
    List.map
      (fun (u, v) -> List [ Number (float_of_int u); Number (float_of_int v) ])
      (Wfc_dag.Dag.edges g)
  in
  Assoc [ ("name", String name); ("tasks", List tasks); ("edges", List edges) ]

let collect_results xs =
  List.fold_right
    (fun x acc ->
      let* acc = acc in
      let* x = x in
      Ok (x :: acc))
    xs (Ok [])

let task_of_json j =
  let* id = Result.bind (member "id" j) to_int in
  let* weight = Result.bind (member "weight" j) to_float in
  let label =
    match Result.bind (member "label" j) to_string_value with
    | Ok l -> Some l
    | Error _ -> None
  in
  let opt_float key =
    match Result.bind (member key j) to_float with
    | Ok x -> x
    | Error _ -> 0.
  in
  match
    Wfc_dag.Task.make ~id ?label ~weight
      ~checkpoint_cost:(opt_float "checkpoint_cost")
      ~recovery_cost:(opt_float "recovery_cost")
      ()
  with
  | t -> Ok t
  | exception Invalid_argument msg -> Error msg

let edge_of_json j =
  let* pair = to_list j in
  match pair with
  | [ a; b ] ->
      let* u = to_int a in
      let* v = to_int b in
      Ok (u, v)
  | _ -> Error "edge must be a two-element array"

let dag_of_json j =
  let* task_list = Result.bind (member "tasks" j) to_list in
  let* tasks = collect_results (List.map task_of_json task_list) in
  let* edge_list = Result.bind (member "edges" j) to_list in
  let* edges = collect_results (List.map edge_of_json edge_list) in
  match Wfc_dag.Dag.create ~tasks:(Array.of_list tasks) ~edges with
  | g -> Ok g
  | exception Invalid_argument msg -> Error msg

let schedule_to_json s =
  let n = Wfc_core.Schedule.n_tasks s in
  Assoc
    [
      ( "order",
        List
          (List.init n (fun p ->
               Number (float_of_int (Wfc_core.Schedule.task_at s p)))) );
      ( "checkpointed",
        List
          (List.map
             (fun v -> Number (float_of_int v))
             (Wfc_core.Schedule.checkpointed_tasks s)) );
    ]

let schedule_of_json g j =
  let* order_list = Result.bind (member "order" j) to_list in
  let* order = collect_results (List.map to_int order_list) in
  let* ckpt_list = Result.bind (member "checkpointed" j) to_list in
  let* ckpts = collect_results (List.map to_int ckpt_list) in
  let n = Wfc_dag.Dag.n_tasks g in
  let checkpointed = Array.make n false in
  match
    List.iter
      (fun v ->
        if v < 0 || v >= n then
          invalid_arg (Printf.sprintf "checkpointed task %d out of range" v);
        checkpointed.(v) <- true)
      ckpts;
    Wfc_core.Schedule.make g ~order:(Array.of_list order) ~checkpointed
  with
  | s -> Ok s
  | exception Invalid_argument msg -> Error msg

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc contents;
      output_char oc '\n')

let read_file path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> Ok contents
  | exception Sys_error msg -> Error msg

let save_dag ?name path g = write_file path (to_string (dag_to_json ?name g))

let load_dag path =
  let* contents = read_file path in
  let* j = of_string contents in
  dag_of_json j

let save_schedule path s = write_file path (to_string (schedule_to_json s))

let load_schedule g path =
  let* contents = read_file path in
  let* j = of_string contents in
  schedule_of_json g j
