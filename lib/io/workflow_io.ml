type format = Dax | Wfcommons | Native

let format_name = function
  | Dax -> "dax"
  | Wfcommons -> "wfcommons"
  | Native -> "json"

(* First meaningful byte, past an optional UTF-8 BOM and whitespace. *)
let first_byte contents =
  let n = String.length contents in
  let i = ref 0 in
  if n >= 3 && String.sub contents 0 3 = "\xef\xbb\xbf" then i := 3;
  while
    !i < n
    && (match contents.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    incr i
  done;
  if !i < n then Some contents.[!i] else None

let sniff contents =
  match first_byte contents with
  | Some '<' -> Some Dax
  | Some _ -> (
      match Json.of_string contents with
      | Error _ -> None
      | Ok j -> (
          match Json.member "workflow" j with
          | Ok _ -> Some Wfcommons
          | Error _ -> Some Native))
  | None -> None

let decode_string contents =
  match first_byte contents with
  | Some '<' -> (
      match Result.bind (Xml.of_string contents) Dax.of_xml with
      | Ok g -> Ok (Dax, g)
      | Error msg -> Error msg)
  | _ -> (
      (* everything else must be JSON: arbitrary bytes die in the parser
         with a positioned message *)
      match Json.of_string contents with
      | Error msg -> Error msg
      | Ok j -> (
          match Json.member "workflow" j with
          | Ok _ -> (
              match Wfcommons.of_json j with
              | Ok g -> Ok (Wfcommons, g)
              | Error msg -> Error msg)
          | Error _ -> (
              match Workflow_format.dag_of_json j with
              | Ok g -> Ok (Native, g)
              | Error msg -> Error msg)))

let load_string_with_format ?(path = "<string>") contents =
  (* the never-raise contract is the whole point of this front door: the
     decoders are total by construction, and this backstop keeps a missed
     corner (or a future regression) from escaping as an exception *)
  match decode_string contents with
  | r -> Result.map_error (fun msg -> path ^ ": " ^ msg) r
  | exception exn ->
      Error (Printf.sprintf "%s: unexpected exception %s" path
               (Printexc.to_string exn))

let load_string ?path contents =
  Result.map snd (load_string_with_format ?path contents)

let load_with_format path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception exn ->
      Error (Printf.sprintf "%s: unexpected exception %s" path
               (Printexc.to_string exn))
  | contents -> load_string_with_format ~path contents

let load path = Result.map snd (load_with_format path)

let extensions = [ ".dax"; ".xml"; ".json" ]

let is_workflow_file name =
  List.exists (fun ext -> Filename.check_suffix name ext) extensions
