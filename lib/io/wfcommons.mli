(** WfCommons workflow-instance (wfformat) JSON import and export.

    WfCommons is the JSON schema behind the public corpora of real Pegasus /
    Makeflow / Nextflow executions (Montage, Epigenomics, CyberShake, ...)
    that the related schedulers evaluate on. We read the subset relevant to
    scheduling:

    {v
    { "name": "epigenomics-chameleon-100",
      "schemaVersion": "1.4",
      "workflow": {
        "tasks": [
          { "name": "fastqSplit_1", "type": "compute",
            "runtimeInSeconds": 12.4,
            "parents": [], "children": ["filterContams_1"] },
          ...
        ] } }
    v}

    Per task we accept [runtimeInSeconds] (new schema) or [runtime] (pre-1.3
    instances, which also say [jobs] instead of [tasks]); [parents] and
    [children] both contribute edges (duplicates collapse). Task ids keep
    their document order. Checkpoint and recovery costs are not part of the
    schema; {!to_json} emits them as [checkpointCost] / [recoveryCost]
    extension fields (with the task label under [label]) so a saved workflow
    reloads to the identical DAG, and {!of_json} reads them back, defaulting
    to zero for genuine WfCommons instances — apply a
    {!Wfc_workflows.Cost_model.t} after loading those.

    Decoders never raise: every failure (malformed JSON shape, duplicate or
    unknown task references, negative or non-finite runtimes, cycles) is an
    [Error] naming the offending task, and the final graph is validated by
    {!Wfc_dag.Dag.create}. *)

val of_json : Json.t -> (Wfc_dag.Dag.t, string) result
val to_json : ?name:string -> Wfc_dag.Dag.t -> Json.t

val load : string -> (Wfc_dag.Dag.t, string) result
(** Read a WfCommons instance file. *)

val save : ?name:string -> string -> Wfc_dag.Dag.t -> unit
(** Write a WfCommons instance file (one [tasks] entry per task, both
    [parents] and [children] populated). *)
