type t = { columns : string list; mutable rev_rows : string list list }

let create ~columns =
  if columns = [] then invalid_arg "Table.create: empty column list";
  { columns; rev_rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: row width mismatch";
  t.rev_rows <- row :: t.rev_rows

let float_cell x =
  if Float.is_integer x && Float.abs x < 1e9 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%.4g" x

let add_float_row t label xs = add_row t (label :: List.map float_cell xs)

let render t =
  let rows = List.rev t.rev_rows in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w cell -> Int.max w (String.length cell)) ws row)
      (List.map String.length t.columns)
      rows
  in
  let buf = Buffer.create 1024 in
  let last = List.length widths - 1 in
  let emit row =
    List.iteri
      (fun i (w, cell) ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        (* no padding after the last column: keeps lines free of trailing
           whitespace, which cram tests would otherwise have to pin *)
        if i < last then
          Buffer.add_string buf (String.make (w - String.length cell) ' '))
      (List.combine widths row);
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  emit (List.map (fun w -> String.make w '-') widths);
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)
