#!/bin/sh
# CI entry point: build, run the full tier-1 suite, then a reduced-seed
# chaos soak as a serving-layer smoke guard. Every phase is wall-clock
# capped so a wedged daemon fails the run instead of hanging CI.
#
#   ./ci.sh            # what CI runs
#   CHAOS_SEEDS=200 ./ci.sh   # the full soak (what FIG=chaos defaults to)
set -eu
cd "$(dirname "$0")"

echo "== build =="
timeout 600 dune build

echo "== tests =="
timeout 900 dune runtest

echo "== chaos smoke (reduced seeds) =="
CHAOS_SEEDS="${CHAOS_SEEDS:-30}" FIG=chaos timeout 30 dune exec bench/main.exe

echo "ci: all green"
