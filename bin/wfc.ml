(* wfc — command-line front end to the workflow-checkpointing library.

   Subcommands:
     generate   emit a synthetic Pegasus workflow (stats or DOT)
     evaluate   expected makespan of one heuristic schedule
     schedule   compare all heuristics on one workflow
     simulate   Monte Carlo fault injection vs the analytic evaluator
     solve      optimal solvers on special structures (chain / fork / join)
     stress     misspecification campaign ranking heuristics by tail behavior
     adapt      static vs adaptive execution on shared failure traces
     replay     record / replay deterministic failure traces
     profile    instrumented end-to-end workload reporting internal metrics
     corpus     sweep a directory of real workflow files across failure
                scenarios and heuristics (golden-testable tables)
     serve      scheduling-as-a-service daemon over a Unix/TCP socket with a
                warm-engine LRU and bounded-queue admission control
     request    client for a running daemon (text or binary protocol)

   Every analysis subcommand also takes --metrics (print internal counters
   after the normal output) and --trace FILE (write solver/simulator spans
   as Chrome trace JSON, or JSONL for .jsonl paths). *)

open Cmdliner
open Wfc_core
module P = Wfc_workflows.Pegasus
module CM = Wfc_workflows.Cost_model
module FM = Wfc_platform.Failure_model
module Linearize = Wfc_dag.Linearize

(* ---- shared converters and options ---- *)

let family_conv =
  let parse s =
    match P.family_of_string s with
    | Some f -> Ok f
    | None -> Error (`Msg (Printf.sprintf "unknown workflow family %S" s))
  in
  Arg.conv (parse, fun ppf f -> Format.pp_print_string ppf (P.family_name f))

let cost_conv =
  let parse s =
    match CM.of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg "cost must look like 0.1w or 5s")
  in
  Arg.conv (parse, fun ppf c -> Format.pp_print_string ppf (CM.name c))

let lin_conv =
  let parse s =
    match Linearize.strategy_of_string s with
    | Some l -> Ok l
    | None -> Error (`Msg "linearization must be DF, BF or RF")
  in
  Arg.conv
    (parse, fun ppf l -> Format.pp_print_string ppf (Linearize.strategy_name l))

let ckpt_conv =
  let parse s =
    match Heuristics.ckpt_strategy_of_string s with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg "strategy must be CkptNvr, CkptAlws, CkptW, CkptC, CkptD or CkptPer")
  in
  Arg.conv
    (parse, fun ppf c -> Format.pp_print_string ppf (Heuristics.ckpt_strategy_name c))

(* Validated numeric converters: out-of-range values must die as one-line
   Cmdliner usage errors (exit 124), never as Invalid_argument backtraces. *)

let float_conv ~what ~ok ~must =
  let parse s =
    match float_of_string_opt s with
    | Some v when ok v -> Ok v
    | Some _ -> Error (`Msg (Printf.sprintf "%s must be %s (got '%s')" what must s))
    | None -> Error (`Msg (Printf.sprintf "invalid %s '%s'" what s))
  in
  Arg.conv (parse, fun ppf v -> Format.fprintf ppf "%g" v)

let positive_float what =
  float_conv ~what ~ok:(fun v -> v > 0. && Float.is_finite v) ~must:"positive"

let nonneg_float what =
  float_conv ~what ~ok:(fun v -> v >= 0. && Float.is_finite v)
    ~must:"non-negative"

let probability what =
  float_conv ~what ~ok:(fun v -> v >= 0. && v <= 1.) ~must:"in [0, 1]"

let positive_int what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 -> Ok v
    | Some _ ->
        Error (`Msg (Printf.sprintf "%s must be at least 1 (got '%s')" what s))
    | None -> Error (`Msg (Printf.sprintf "invalid %s '%s'" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let nonneg_int what =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 0 -> Ok v
    | Some _ ->
        Error (`Msg (Printf.sprintf "%s must be non-negative (got '%s')" what s))
    | None -> Error (`Msg (Printf.sprintf "invalid %s '%s'" what s))
  in
  Arg.conv (parse, Format.pp_print_int)

let port_conv =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 0 && v <= 65535 -> Ok v
    | Some _ ->
        Error (`Msg (Printf.sprintf "port must be in [0, 65535] (got '%s')" s))
    | None -> Error (`Msg (Printf.sprintf "invalid port '%s'" s))
  in
  Arg.conv (parse, Format.pp_print_int)

(* --deadline SECONDS: one validated term shared by stress, corpus and the
   serve-side text/binary protocol (which reuses the same wording in
   Wfc_serve.Protocol.validate), so every surface rejects a bad deadline
   with the same message. *)
let deadline_arg ~doc =
  Arg.(value & opt (some (positive_float "deadline")) None
       & info [ "deadline" ] ~docv:"SECONDS" ~doc)

(* --failures LAW: one validated inter-arrival law grammar shared by
   simulate, stress, adapt and replay. Nonsense dies as a usage error
   (exit 124), including out-of-range parameters the Distribution smart
   constructors would reject. *)

module Dist = Wfc_platform.Distribution

let failures_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid failure law %S: expected exp:RATE, weibull:SHAPE,SCALE, \
              hyper:P,RATE1,RATE2 or const:VALUE"
             s))
    in
    match String.index_opt s ':' with
    | None -> fail ()
    | Some i -> (
        let kind = String.lowercase_ascii (String.sub s 0 i) in
        let args =
          String.split_on_char ',' (String.sub s (i + 1) (String.length s - i - 1))
          |> List.map float_of_string_opt
        in
        let guard make = try Ok (make ()) with Invalid_argument m -> Error (`Msg m) in
        match (kind, args) with
        | "exp", [ Some rate ] -> guard (fun () -> Dist.exponential ~rate)
        | "weibull", [ Some shape; Some scale ] ->
            guard (fun () -> Dist.weibull ~shape ~scale)
        | "hyper", [ Some p; Some rate1; Some rate2 ] ->
            guard (fun () -> Dist.hyperexponential ~p ~rate1 ~rate2)
        | "const", [ Some v ] ->
            if v > 0. && Float.is_finite v then Ok (Dist.constant v)
            else Error (`Msg "const: inter-arrival time must be positive")
        | _ -> fail ())
  in
  Arg.conv (parse, fun ppf d -> Format.pp_print_string ppf (Dist.name d))

let failures_t =
  Arg.(value & opt (some failures_conv) None
       & info [ "failures" ] ~docv:"LAW"
           ~doc:"Failure inter-arrival law for renewal simulation: \
                 $(b,exp:RATE), $(b,weibull:SHAPE,SCALE), \
                 $(b,hyper:P,RATE1,RATE2) or $(b,const:VALUE) (seconds). \
                 Failures arrive as a renewal process of this law instead of \
                 memoryless exponential ones.")

(* --replicas POLICY: one validated replication-policy grammar shared by
   solve, simulate, stress, adapt and profile. Nonsense dies as a usage
   error (exit 124), like --failures. *)

let replicas_conv =
  let parse s =
    match Replication.spec_of_string s with
    | Some spec -> Ok spec
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "invalid replication policy %S: expected auto, none, k:N \
                (N >= 1) or budget:F (F > 0)"
               s))
  in
  Arg.conv
    (parse, fun ppf s -> Format.pp_print_string ppf (Replication.spec_name s))

let replicas_t =
  Arg.(value & opt replicas_conv Replication.No_replication
       & info [ "replicas" ] ~docv:"POLICY"
           ~doc:"Task replication policy, the second resilience axis next to \
                 checkpointing: $(b,none) (default), $(b,auto) (greedy spend \
                 of 20% of the total weight in extra copies), $(b,k:N) \
                 (duplicate the N heaviest tasks) or $(b,budget:F) (greedy \
                 spend of a fraction F of the total weight).")

let replica_cost_t =
  Arg.(value & opt (nonneg_float "replica cost") Replication.default_cost
       & info [ "replica-cost" ] ~docv:"FRACTION"
           ~doc:"Execution-time surcharge per extra replica, as a fraction \
                 of the task's weight (default 1: each copy is a full \
                 re-execution).")

let family_t =
  Arg.(value & opt family_conv P.Montage & info [ "w"; "workflow" ] ~doc:"Workflow family: Montage, Ligo, CyberShake or Genome.")

let n_t =
  Arg.(value & opt (positive_int "task count") 100
       & info [ "n"; "tasks" ] ~doc:"Number of tasks.")

let seed_t = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generation seed.")

let mtbf_t =
  Arg.(value & opt (positive_float "MTBF") 1000.
       & info [ "mtbf" ] ~doc:"Platform MTBF in seconds.")

let downtime_t =
  Arg.(value & opt (nonneg_float "downtime") 0.
       & info [ "downtime" ] ~doc:"Downtime after each failure (s).")

let cost_t =
  Arg.(value & opt cost_conv (CM.Proportional 0.1)
       & info [ "c"; "cost" ] ~doc:"Checkpoint cost model: e.g. 0.1w (proportional) or 5s (constant). Recovery cost equals checkpoint cost.")

let lin_t =
  Arg.(value & opt lin_conv Linearize.Depth_first
       & info [ "l"; "linearization" ] ~doc:"Linearization strategy: DF, BF or RF.")

let ckpt_t =
  Arg.(value & opt ckpt_conv Heuristics.Ckpt_weight
       & info [ "s"; "strategy" ] ~doc:"Checkpointing strategy.")

let grid_t =
  Arg.(value & opt int 0
       & info [ "grid" ] ~doc:"Search the checkpoint count on a grid of at most this many values (0 = exhaustive).")

let engine_conv =
  let parse s =
    match Wfc_core.Eval_engine.backend_of_string s with
    | Some b -> Ok b
    | None -> Error (`Msg (Printf.sprintf "unknown engine '%s' (naive, incremental or flat)" s))
  in
  Arg.conv
    (parse, fun ppf b -> Format.pp_print_string ppf (Wfc_core.Eval_engine.backend_name b))

let engine_t =
  Arg.(value & opt engine_conv Wfc_core.Eval_engine.Incremental
       & info [ "engine" ]
           ~doc:"Evaluation backend for checkpoint searches: incremental \
                 (cached suffix re-evaluation), flat (the same semantics on \
                 contiguous zero-allocation buffers, with a dominance-pruned \
                 parallel branch and bound) or naive (one full evaluator \
                 call per candidate). All report oracle makespans.")

let load_t =
  Arg.(value & opt (some string) None
       & info [ "load" ] ~docv:"FILE"
           ~doc:"Load the workflow from a file instead of generating one. \
                 The format is sniffed from the contents: Pegasus DAX XML, \
                 WfCommons instance JSON or native JSON. Files without \
                 checkpoint costs (DAX, WfCommons) get the $(b,--cost) \
                 model applied; native JSON carries its own costs.")

let workflow ~load family n seed cost =
  match load with
  | Some path -> (
      match Wfc_io.Workflow_io.load path with
      (* raw-runtime formats carry no checkpoint costs: apply --cost *)
      | Ok g -> CM.ensure cost g
      | Error msg ->
          Printf.eprintf "cannot load %s\n" msg;
          exit 1)
  | None -> CM.apply cost (P.generate family ~n ~seed)

let model mtbf downtime = FM.of_mtbf ~mtbf ~downtime ()

let search_of_grid grid =
  if grid <= 0 then Heuristics.Exhaustive else Heuristics.Grid grid

(* ---- observability (--metrics / --trace) ---- *)

module Obs_metrics = Wfc_obs.Metrics
module Obs_trace = Wfc_obs.Trace

let metrics_t =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Record internal counters (engine cache hits, B&B nodes, \
                 simulator replicas, ...) and print them after the command's \
                 normal output.")

let obs_trace_t =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record solver and simulator spans and write them to $(docv) \
                 on exit: Chrome trace-event JSON (load in about://tracing or \
                 Perfetto), or flat JSONL when $(docv) ends in .jsonl.")

let hist_row name (h : Obs_metrics.hist_snapshot) =
  let mean =
    if h.Obs_metrics.hcount = 0 then 0.
    else h.Obs_metrics.hsum /. float_of_int h.Obs_metrics.hcount
  in
  [ name; "histogram";
    Printf.sprintf "n=%d mean=%.4g p50<=%.4g p99<=%.4g" h.Obs_metrics.hcount
      mean
      (Obs_metrics.hist_quantile h 0.5)
      (Obs_metrics.hist_quantile h 0.99) ]

(* Zero counters and empty histograms are skipped, so the table only shows
   the machinery the command actually exercised and its rows are stable
   enough to pin in cram tests. *)
let metrics_rows () =
  let s = Obs_metrics.snapshot () in
  List.filter_map
    (fun (name, v) ->
      if v = 0 then None else Some [ name; "counter"; string_of_int v ])
    s.Obs_metrics.counters
  @ List.map
      (fun (name, v) -> [ name; "gauge"; Printf.sprintf "%.4g" v ])
      s.Obs_metrics.gauges
  @ List.filter_map
      (fun (name, h) ->
        if h.Obs_metrics.hcount = 0 then None else Some (hist_row name h))
      s.Obs_metrics.histograms

let print_metrics () =
  let table =
    Wfc_reporting.Table.create ~columns:[ "metric"; "kind"; "value" ]
  in
  List.iter (Wfc_reporting.Table.add_row table) (metrics_rows ());
  Wfc_reporting.Table.print table

let write_trace path =
  if Filename.check_suffix path ".jsonl" then Obs_trace.write_jsonl path
  else Obs_trace.write_chrome path;
  Format.printf "trace written to %s (%d events)@." path
    (Obs_trace.event_count ())

let with_obs ~metrics ~trace f =
  Obs_metrics.set_enabled metrics;
  if trace <> None then Obs_trace.set_enabled true;
  let r = f () in
  (match trace with Some path -> write_trace path | None -> ());
  if metrics then begin
    Format.printf "@.-- metrics --@.";
    print_metrics ()
  end;
  r

(* ---- generate ---- *)

let generate family n seed cost dot json dax =
  let g = workflow ~load:None family n seed cost in
  let emitted = ref false in
  (match dot with
  | Some path ->
      Wfc_dag.Dot.write_file path (Wfc_dag.Dot.to_dot ~name:(P.family_name family) g);
      Format.printf "wrote %s@." path;
      emitted := true
  | None -> ());
  (match json with
  | Some path ->
      Wfc_io.Workflow_format.save_dag
        ~name:(Printf.sprintf "%s-%d" (P.family_name family) n)
        path g;
      Format.printf "wrote %s@." path;
      emitted := true
  | None -> ());
  (match dax with
  | Some path ->
      Wfc_io.Dax.save ~name:(P.family_name family) path g;
      Format.printf "wrote %s@." path;
      emitted := true
  | None -> ());
  if not !emitted then begin
    Format.printf "%a@." Wfc_dag.Dag.pp_stats g;
    Format.printf "sources: %d, sinks: %d, critical path: %.1f s@."
      (List.length (Wfc_dag.Dag.sources g))
      (List.length (Wfc_dag.Dag.sinks g))
      (Wfc_dag.Dag.critical_path g)
  end

let generate_cmd =
  let dot_t =
    Arg.(value & opt (some string) None & info [ "dot" ] ~doc:"Write the DAG in DOT format to $(docv)." ~docv:"FILE")
  in
  let json_t =
    Arg.(value & opt (some string) None & info [ "json" ] ~doc:"Write the workflow as JSON to $(docv) (reloadable with --load)." ~docv:"FILE")
  in
  let dax_t =
    Arg.(value & opt (some string) None & info [ "dax" ] ~doc:"Write the workflow as a Pegasus DAX file to $(docv)." ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a synthetic Pegasus workflow")
    Term.(const generate $ family_t $ n_t $ seed_t $ cost_t $ dot_t $ json_t
          $ dax_t)

(* ---- evaluate ---- *)

let source_name ~load family =
  match load with Some path -> path | None -> P.family_name family

let evaluate family n seed cost mtbf downtime lin ckpt grid engine load save
    metrics trace =
  with_obs ~metrics ~trace @@ fun () ->
  let g = workflow ~load family n seed cost in
  let model = model mtbf downtime in
  let o =
    Heuristics.run ~search:(search_of_grid grid) ~backend:engine model g ~lin
      ~ckpt
  in
  (match save with
  | Some path ->
      Wfc_io.Workflow_format.save_schedule path o.Heuristics.schedule;
      Format.printf "schedule written to %s@." path
  | None -> ());
  let tinf = Evaluator.fail_free_time g in
  Format.printf "%s on %s (%d tasks), %a@."
    (Heuristics.name lin ckpt) (source_name ~load family)
    (Wfc_dag.Dag.n_tasks g) FM.pp model;
  Format.printf "  E[makespan] = %.2f s@." o.Heuristics.makespan;
  Format.printf "  T_inf       = %.2f s (ratio %.4f)@." tinf
    (o.Heuristics.makespan /. tinf);
  Format.printf "  checkpoints = %d (evaluator calls: %d)@."
    (Schedule.checkpoint_count o.Heuristics.schedule)
    o.Heuristics.evaluations

let evaluate_cmd =
  let save_t =
    Arg.(value & opt (some string) None
         & info [ "save-schedule" ] ~docv:"FILE"
             ~doc:"Write the chosen schedule (order + checkpoint set) as \
                   JSON to $(docv).")
  in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Expected makespan of one heuristic schedule")
    Term.(const evaluate $ family_t $ n_t $ seed_t $ cost_t $ mtbf_t
          $ downtime_t $ lin_t $ ckpt_t $ grid_t $ engine_t $ load_t $ save_t
          $ metrics_t $ obs_trace_t)

(* ---- schedule (compare heuristics) ---- *)

let schedule family n seed cost mtbf downtime grid engine load extended
    metrics trace =
  with_obs ~metrics ~trace @@ fun () ->
  let g = workflow ~load family n seed cost in
  let model = model mtbf downtime in
  let tinf = Evaluator.fail_free_time g in
  Format.printf "%s, %d tasks, %s, %a@.@." (source_name ~load family)
    (Wfc_dag.Dag.n_tasks g) (CM.name cost) FM.pp model;
  let table =
    Wfc_reporting.Table.create
      ~columns:[ "heuristic"; "E[makespan]"; "ratio"; "checkpoints" ]
  in
  let strategies =
    if extended then Heuristics.extended_ckpt_strategies
    else Heuristics.all_ckpt_strategies
  in
  let linearizations = if extended then Linearize.extended else Linearize.all in
  List.iter
    (fun ckpt ->
      let lins =
        match ckpt with
        | Heuristics.Ckpt_never | Heuristics.Ckpt_always ->
            [ Linearize.Depth_first ]
        | _ -> linearizations
      in
      List.iter
        (fun lin ->
          let o =
            Heuristics.run ~search:(search_of_grid grid) ~backend:engine model
              g ~lin ~ckpt
          in
          Wfc_reporting.Table.add_row table
            [
              Heuristics.name lin ckpt;
              Printf.sprintf "%.1f" o.Heuristics.makespan;
              Printf.sprintf "%.4f" (o.Heuristics.makespan /. tinf);
              string_of_int (Schedule.checkpoint_count o.Heuristics.schedule);
            ])
        lins)
    strategies;
  Wfc_reporting.Table.print table

let schedule_cmd =
  let extended_t =
    Arg.(value & flag
         & info [ "extended" ]
             ~doc:"Also run the extension strategies (DF-BL linearization, \
                   CkptE checkpointing).")
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Compare all 14 heuristics on one workflow")
    Term.(const schedule $ family_t $ n_t $ seed_t $ cost_t $ mtbf_t
          $ downtime_t $ grid_t $ engine_t $ load_t $ extended_t $ metrics_t
          $ obs_trace_t)

(* ---- simulate ---- *)

let simulate family n seed cost mtbf downtime lin ckpt grid engine runs load
    replicas replica_cost failures_opt weibull_shape overlap events metrics
    trace =
  with_obs ~metrics ~trace @@ fun () ->
  if replicas <> Replication.No_replication && overlap <> None then begin
    Printf.eprintf
      "wfc simulate: --replicas cannot be combined with --overlap \
       (non-blocking checkpoints are single-copy)\n";
    exit 124
  end;
  let g = workflow ~load family n seed cost in
  let model = model mtbf downtime in
  let o =
    Heuristics.run ~search:(search_of_grid grid) ~backend:engine model g ~lin
      ~ckpt
  in
  (match events with
  | Some limit ->
      let _, events =
        Wfc_simulator.Sim_trace.run ~rng:(Wfc_platform.Rng.create seed) model g
          o.Heuristics.schedule
      in
      Format.printf "-- trace of one run (%d of %d events) --@."
        (Int.min limit (List.length events))
        (List.length events);
      List.iteri
        (fun i e ->
          if i < limit then
            Format.printf "%a@." Wfc_simulator.Sim_trace.pp_event e)
        events;
      if Wfc_dag.Dag.n_tasks g <= 40 then
        Format.printf "%s" (Wfc_simulator.Sim_trace.render_timeline events)
  | None -> ());
  let o = Heuristics.replicate ~cost:replica_cost replicas model g o in
  (* --failures names the renewal law directly and wins over the
     --weibull-shape shorthand; with neither, failures are memoryless
     exponential at the model's rate *)
  let failures =
    match (failures_opt, weibull_shape) with
    | Some d, _ -> d
    | None, Some shape -> Dist.weibull_of_mean ~shape ~mean:mtbf
    | None, None -> Dist.exponential ~rate:model.FM.lambda
  in
  let renewal = failures_opt <> None || weibull_shape <> None in
  let est =
    match overlap with
    | Some interference ->
        Wfc_simulator.Monte_carlo.estimate_overlap ~runs ~seed
          { Wfc_simulator.Sim_overlap.interference; failures; downtime }
          g o.Heuristics.schedule
    | None ->
        if renewal then
          Wfc_simulator.Monte_carlo.estimate_renewal ~replica_cost ~runs ~seed
            ~failures ~downtime g o.Heuristics.schedule
        else
          Wfc_simulator.Monte_carlo.estimate ~replica_cost ~runs ~seed model g
            o.Heuristics.schedule
  in
  let module Stats = Wfc_platform.Stats in
  let mc = est.Wfc_simulator.Monte_carlo.makespan in
  let lo, hi = Stats.confidence95 mc in
  Format.printf "%s on %s (%d tasks), %a, failures %s%s@."
    (Heuristics.name lin ckpt) (source_name ~load family) (Wfc_dag.Dag.n_tasks g)
    FM.pp model
    (Wfc_platform.Distribution.name failures)
    (match overlap with
    | Some s -> Printf.sprintf ", non-blocking checkpoints (interference %g)" s
    | None -> "");
  Format.printf "  analytic E[makespan] : %.2f s (exponential, blocking model)@."
    o.Heuristics.makespan;
  if Schedule.is_replicated o.Heuristics.schedule then
    Format.printf "  replication          : %s (%d extra copies, %g weight each)@."
      (Replication.spec_name replicas)
      (Schedule.extra_replicas o.Heuristics.schedule)
      replica_cost;
  Format.printf "  simulated mean       : %.2f s  (95%% CI [%.2f, %.2f], %d runs)@."
    (Stats.mean mc) lo hi runs;
  Format.printf "  failures per run     : %.2f (max %.0f)@."
    (Stats.mean est.Wfc_simulator.Monte_carlo.failures)
    (Stats.max_value est.Wfc_simulator.Monte_carlo.failures);
  Format.printf "  wasted time per run  : %.2f s@."
    (Stats.mean est.Wfc_simulator.Monte_carlo.wasted)

let simulate_cmd =
  let runs_t =
    Arg.(value & opt (positive_int "run count") 10_000
         & info [ "runs" ] ~doc:"Number of Monte Carlo runs.")
  in
  let weibull_t =
    Arg.(value & opt (some float) None
         & info [ "weibull-shape" ]
             ~doc:"Inject Weibull failures of this shape (renewal process at \
                   the same MTBF) instead of exponential ones.")
  in
  let overlap_t =
    Arg.(value & opt (some float) None
         & info [ "overlap" ] ~docv:"INTERFERENCE"
             ~doc:"Simulate non-blocking checkpoints: writes proceed in the \
                   background while computation slows down by $(docv) in \
                   [0,1].")
  in
  let events_t =
    Arg.(value & opt (some int) None
         & info [ "events" ] ~docv:"EVENTS"
             ~doc:"Print the first $(docv) events of one traced run before \
                   the Monte Carlo summary.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Monte Carlo fault injection vs the analytic evaluator")
    Term.(const simulate $ family_t $ n_t $ seed_t $ cost_t $ mtbf_t
          $ downtime_t $ lin_t $ ckpt_t $ grid_t $ engine_t $ runs_t $ load_t
          $ replicas_t $ replica_cost_t $ failures_t $ weibull_t $ overlap_t
          $ events_t $ metrics_t $ obs_trace_t)

(* ---- stress (misspecification campaign) ---- *)

let stress family n seed cost mtbf downtime grid engine load replicas
    replica_cost runs domains csv exact_budget deadline failures_opt p_ckpt
    p_rec max_failures metrics trace =
  with_obs ~metrics ~trace @@ fun () ->
  let module Stress = Wfc_resilience.Stress in
  let module Driver = Wfc_resilience.Solver_driver in
  let g = workflow ~load family n seed cost in
  let nominal = model mtbf downtime in
  let scenarios =
    Stress.default_grid nominal
    @ (match failures_opt with
      | Some d ->
          [
            {
              Stress.name = Printf.sprintf "custom(%s)" (Dist.name d);
              params =
                {
                  (Wfc_simulator.Sim_faults.nominal nominal) with
                  Wfc_simulator.Sim_faults.failures = d;
                };
            };
          ]
      | None -> [])
    @
    if p_ckpt > 0. || p_rec > 0. then
      [
        {
          Stress.name = Printf.sprintf "custom(pc=%g,pr=%g)" p_ckpt p_rec;
          params =
            {
              (Wfc_simulator.Sim_faults.nominal nominal) with
              Wfc_simulator.Sim_faults.p_ckpt_fail = p_ckpt;
              p_rec_fail = p_rec;
            };
        };
      ]
    else []
  in
  let heuristics =
    List.map
      (fun ckpt -> (Linearize.Depth_first, ckpt))
      [
        Heuristics.Ckpt_never; Heuristics.Ckpt_always; Heuristics.Ckpt_weight;
        Heuristics.Ckpt_cost; Heuristics.Ckpt_outweight; Heuristics.Ckpt_periodic;
      ]
  in
  let ranked =
    Stress.rank ~runs ?domains ~max_failures ~search:(search_of_grid grid)
      ~backend:engine ~replication:replicas ~replica_cost ~seed ~nominal
      ~scenarios g heuristics
  in
  let rows =
    List.map
      (fun r ->
        ( r.Stress.heuristic,
          r.Stress.outcome.Heuristics.makespan,
          r.Stress.report ))
      ranked
  in
  (* optional graceful-degradation driver entry, stress-tested like the rest *)
  let driver_result =
    if exact_budget <= 0 then None
    else begin
      let order = Linearize.run Linearize.Depth_first g in
      let config =
        {
          Driver.default_config with
          Driver.max_nodes = exact_budget;
          deadline;
          search = search_of_grid grid;
          backend = engine;
        }
      in
      let d = Driver.solve ~config nominal g ~order in
      let report =
        Stress.evaluate ~runs ?domains ~max_failures ~seed ~nominal ~scenarios
          g d.Driver.schedule
      in
      Some (d, ("DF-exact[" ^ Driver.tier_name d.Driver.tier ^ "]", d.Driver.makespan, report))
    end
  in
  let rows =
    match driver_result with None -> rows | Some (_, row) -> rows @ [ row ]
  in
  let rows =
    List.stable_sort
      (fun (_, m1, r1) (_, m2, r2) ->
        match Float.compare r1.Stress.robustness r2.Stress.robustness with
        | 0 -> Float.compare m1 m2
        | c -> c)
      rows
  in
  Format.printf
    "stress campaign: %s (%d tasks), nominal %a@.%d scenarios x %d schedules, \
     %d runs each, seed %d@.@."
    (source_name ~load family) (Wfc_dag.Dag.n_tasks g) FM.pp nominal
    (List.length scenarios) (List.length rows) runs seed;
  (match driver_result with
  | Some (d, _) ->
      Format.printf "exact driver: tier %s, E[makespan] %.2f s (%s)@.@."
        (Driver.tier_name d.Driver.tier) d.Driver.makespan d.Driver.reason
  | None -> ());
  let ranking =
    Wfc_reporting.Table.create
      ~columns:
        [
          "rank"; "schedule"; "E[T] nominal"; "worst mean x"; "worst p99 x";
          "divergent";
        ]
  in
  List.iteri
    (fun i (name, nominal_m, report) ->
      let worst_mean =
        List.fold_left
          (fun acc r -> Float.max acc r.Stress.mean_degradation)
          0. report.Stress.results
      in
      let divergent =
        List.fold_left
          (fun acc r -> acc + r.Stress.divergent)
          0 report.Stress.results
      in
      Wfc_reporting.Table.add_row ranking
        [
          string_of_int (i + 1);
          name;
          Printf.sprintf "%.1f" nominal_m;
          Printf.sprintf "%.3f" worst_mean;
          (* divergent runs truncate makespans, so the tail ratio is a
             meaningless lower bound: flag it instead of printing it *)
          (if Float.is_finite report.Stress.robustness then
             Printf.sprintf "%.3f" report.Stress.robustness
           else "(divergent)");
          string_of_int divergent;
        ])
    rows;
  Wfc_reporting.Table.print ranking;
  (match rows with
  | (best, _, report) :: _ ->
      Format.printf "@.per-scenario tail behavior of %s:@.@." best;
      let detail =
        Wfc_reporting.Table.create
          ~columns:
            [ "scenario"; "mean"; "p95"; "p99"; "mean x"; "p99 x"; "divergent" ]
      in
      List.iter
        (fun r ->
          Wfc_reporting.Table.add_row detail
            [
              r.Stress.scenario.Stress.name;
              Printf.sprintf "%.1f" r.Stress.mean;
              Printf.sprintf "%.1f" r.Stress.p95;
              Printf.sprintf "%.1f" r.Stress.p99;
              Printf.sprintf "%.3f" r.Stress.mean_degradation;
              Printf.sprintf "%.3f" r.Stress.tail_degradation;
              string_of_int r.Stress.divergent;
            ])
        report.Stress.results;
      Wfc_reporting.Table.print detail
  | [] -> ());
  match csv with
  | None -> ()
  | Some path ->
      let csv_rows =
        List.concat_map
          (fun (name, nominal_m, report) ->
            List.map
              (fun r ->
                [
                  name;
                  r.Stress.scenario.Stress.name;
                  Printf.sprintf "%.6g" nominal_m;
                  Printf.sprintf "%.6g" r.Stress.mean;
                  Printf.sprintf "%.6g" r.Stress.p95;
                  Printf.sprintf "%.6g" r.Stress.p99;
                  Printf.sprintf "%.6g" r.Stress.mean_degradation;
                  Printf.sprintf "%.6g" r.Stress.tail_degradation;
                ])
              report.Stress.results)
          rows
      in
      Wfc_reporting.Csv.write_file path
        ~header:
          [
            "schedule"; "scenario"; "nominal_makespan"; "mean"; "p95"; "p99";
            "mean_degradation"; "p99_degradation";
          ]
        ~rows:csv_rows;
      Format.printf "@.wrote %s@." path

let stress_cmd =
  let runs_t =
    Arg.(value & opt (positive_int "run count") 2000
         & info [ "runs" ] ~doc:"Monte Carlo runs per scenario.")
  in
  let domains_t =
    Arg.(value & opt (some (positive_int "domain count")) None
         & info [ "domains" ]
             ~doc:"Parallelize each scenario over this many domains (results \
                   are bit-identical whatever the value).")
  in
  let csv_t =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Also dump every (schedule, scenario) row as CSV to $(docv).")
  in
  let exact_budget_t =
    Arg.(value & opt int 0
         & info [ "exact-budget" ] ~docv:"NODES"
             ~doc:"Also run the graceful-degradation exact driver with this \
                   branch-and-bound node budget (0 = skip).")
  in
  let deadline_t =
    deadline_arg ~doc:"Wall-clock deadline for the exact driver's search."
  in
  let p_ckpt_t =
    Arg.(value & opt (probability "checkpoint corruption probability") 0.
         & info [ "p-ckpt-fail" ]
             ~doc:"Add a custom scenario where checkpoints silently corrupt \
                   with this probability.")
  in
  let p_rec_t =
    Arg.(value & opt (probability "recovery failure probability") 0.
         & info [ "p-rec-fail" ]
             ~doc:"Add a custom scenario where recovery reads fail \
                   transiently with this probability.")
  in
  let max_failures_t =
    Arg.(value & opt (positive_int "failure cap") 10_000
         & info [ "max-failures" ]
             ~doc:"Per-run failure cap: runs injecting this many failures \
                   stop early and count as divergent, which disqualifies \
                   the schedule's robustness score. Raise it for heavy \
                   workflows whose runs legitimately survive thousands of \
                   failures.")
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:"Misspecification campaign: rank schedules by tail behavior under \
             perturbed platforms")
    Term.(const stress $ family_t $ n_t $ seed_t $ cost_t $ mtbf_t $ downtime_t
          $ grid_t $ engine_t $ load_t $ replicas_t $ replica_cost_t $ runs_t
          $ domains_t $ csv_t $ exact_budget_t $ deadline_t $ failures_t
          $ p_ckpt_t $ p_rec_t $ max_failures_t $ metrics_t $ obs_trace_t)

(* ---- solve (special structures) ---- *)

let solve kind n seed mtbf downtime replicas replica_cost metrics trace =
  with_obs ~metrics ~trace @@ fun () ->
  let model = model mtbf downtime in
  let rng = Wfc_platform.Rng.create seed in
  let rand b = Wfc_platform.Rng.float rng b in
  if replicas <> Replication.No_replication && kind <> "chain" then
    Format.printf "(--replicas applies to the chain structure only; ignored)@.";
  match kind with
  | "chain" ->
      let weights = Array.init n (fun _ -> 10. +. rand 90.) in
      let g =
        Wfc_dag.Builders.chain ~weights
          ~checkpoint_cost:(fun _ w -> 0.1 *. w)
          ~recovery_cost:(fun _ w -> 0.1 *. w)
          ()
      in
      let sol = Chain_solver.solve model g in
      Format.printf "random chain of %d tasks: optimal E[makespan] = %.2f s@." n
        sol.Chain_solver.makespan;
      Format.printf "checkpointed tasks: %s@."
        (String.concat " "
           (List.filteri (fun i _ -> sol.Chain_solver.checkpointed.(i))
              (List.init n string_of_int)
           |> List.map (fun s -> "T" ^ s)));
      (match replicas with
      | Replication.No_replication -> ()
      | spec ->
          (* replication on top of the optimal checkpoint placement: the
             chain keeps its order, the policy spends extra copies *)
          let sched =
            Schedule.make g ~order:(Array.init n Fun.id)
              ~checkpointed:sol.Chain_solver.checkpointed
          in
          let rsched =
            Schedule.with_replicas sched
              (Heuristics.replication_counts ~cost:replica_cost spec model g
                 ~sched)
          in
          Format.printf
            "with replication %s: E[makespan] = %.2f s (%d extra copies)@."
            (Replication.spec_name spec)
            (Evaluator.expected_makespan ~replica_cost model g rsched)
            (Schedule.extra_replicas rsched))
  | "fork" ->
      let g =
        Wfc_dag.Builders.fork ~source_weight:(50. +. rand 50.)
          ~sink_weights:(Array.init (n - 1) (fun _ -> 10. +. rand 40.))
          ~checkpoint_cost:(fun _ w -> 0.1 *. w)
          ~recovery_cost:(fun _ w -> 0.1 *. w)
          ()
      in
      let sol = Fork_solver.solve model g in
      Format.printf
        "random fork (1 + %d tasks): checkpoint source? %b@.  with ckpt %.2f s, without %.2f s@."
        (n - 1) sol.Fork_solver.checkpoint_source
        sol.Fork_solver.makespan_if_checkpointed sol.Fork_solver.makespan_if_not
  | "join" ->
      let k = Int.min (n - 1) 16 in
      let g =
        Wfc_dag.Builders.join
          ~source_weights:(Array.init k (fun _ -> 10. +. rand 40.))
          ~sink_weight:(5. +. rand 10.)
          ~checkpoint_cost:(fun _ w -> 0.1 *. w)
          ~recovery_cost:(fun _ w -> 0.1 *. w)
          ()
      in
      let sol = Join_solver.solve_exact model g in
      let chosen =
        List.filteri (fun i _ -> sol.Join_solver.ckpt.(i)) (List.init k Fun.id)
        |> List.map (fun i -> "T" ^ string_of_int i)
      in
      Format.printf
        "random join (%d + 1 tasks): optimal E[makespan] = %.2f s@.checkpointed sources: %s@."
        k sol.Join_solver.makespan
        (if chosen = [] then "(none)" else String.concat " " chosen)
  | other ->
      (* unreachable: the converter only lets the three structures through *)
      invalid_arg ("Wfc.solve: " ^ other)

let solve_cmd =
  let structure_conv =
    let parse s =
      match String.lowercase_ascii s with
      | ("chain" | "fork" | "join") as k -> Ok k
      | _ ->
          Error
            (`Msg (Printf.sprintf "unknown structure %S (chain, fork or join)" s))
    in
    Arg.conv (parse, Format.pp_print_string)
  in
  let kind_t =
    Arg.(value & pos 0 structure_conv "chain"
         & info [] ~docv:"STRUCTURE" ~doc:"chain, fork or join.")
  in
  Cmd.v
    (Cmd.info "solve" ~doc:"Optimal solvers on special structures")
    Term.(const solve $ kind_t $ n_t $ seed_t $ mtbf_t $ downtime_t
          $ replicas_t $ replica_cost_t $ metrics_t $ obs_trace_t)

(* ---- adapt (risk-aware adaptive-vs-static selection) ---- *)

module Robust = Wfc_resilience.Robust
module SA = Wfc_simulator.Sim_adaptive
module Trace_io = Wfc_simulator.Trace_io

let trigger_conv =
  let parse s =
    let fail () =
      Error
        (`Msg
          (Printf.sprintf
             "invalid trigger %S: expected every, k:N (N >= 1) or drift:F \
              (F > 1)"
             s))
    in
    match String.lowercase_ascii s with
    | "every" -> Ok SA.Every_failure
    | s -> (
        match String.index_opt s ':' with
        | None -> fail ()
        | Some i -> (
            let tail = String.sub s (i + 1) (String.length s - i - 1) in
            match String.sub s 0 i with
            | "k" -> (
                match int_of_string_opt tail with
                | Some k when k >= 1 -> Ok (SA.Every_k k)
                | _ -> fail ())
            | "drift" -> (
                match float_of_string_opt tail with
                | Some f when f > 1. && Float.is_finite f -> Ok (SA.On_drift f)
                | _ -> fail ())
            | _ -> fail ()))
  in
  let print ppf = function
    | SA.Every_failure -> Format.pp_print_string ppf "every"
    | SA.Every_k k -> Format.fprintf ppf "k:%d" k
    | SA.On_drift f -> Format.fprintf ppf "drift:%g" f
  in
  Arg.conv (parse, print)

let criterion_conv =
  let parse s =
    match Robust.criterion_of_string s with
    | Some c -> Ok c
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown criterion %S: expected mean, worst, cvar or cvar:Q \
                with Q in [0, 1]"
               s))
  in
  Arg.conv
    (parse, fun ppf c -> Format.pp_print_string ppf (Robust.criterion_name c))

let adapt family n seed cost mtbf downtime lin ckpt grid engine load replicas
    replica_cost true_mtbf failures_opt trigger budget traces criterion
    horizon relinearize csv metrics trace =
  with_obs ~metrics ~trace @@ fun () ->
  let module Driver = Wfc_resilience.Solver_driver in
  let g = workflow ~load family n seed cost in
  let planning = model mtbf downtime in
  let o =
    Heuristics.run ~search:(search_of_grid grid) ~backend:engine planning g
      ~lin ~ckpt
  in
  let true_mtbf = Option.value true_mtbf ~default:mtbf in
  let truth = FM.of_mtbf ~mtbf:true_mtbf ~downtime () in
  let scenarios =
    match failures_opt with
    | Some d ->
        [ { Robust.name = Dist.name d; failures = d;
            downtime = Dist.constant downtime } ]
    | None -> Robust.default_scenarios truth
  in
  let replanner =
    Driver.replanner ~budget ~backend:engine
      ?relinearize:(if relinearize then Some lin else None)
      g
  in
  let config =
    { (SA.default_config planning) with SA.trigger; replan = Some replanner }
  in
  let static_name = Heuristics.name lin ckpt in
  let candidates =
    [
      Robust.static ~name:static_name g o.Heuristics.schedule;
      Robust.adaptive ~name:"adaptive" config g o.Heuristics.schedule;
    ]
    @
    (* the checkpoint-vs-replica trade-off: score a mixed (checkpoints +
       replicas) and a replica-only policy on the same primary failure
       stream as the checkpoint-only candidates *)
    match replicas with
    | Replication.No_replication -> []
    | spec ->
        let tag = Replication.spec_name spec in
        let mixed =
          (Heuristics.replicate ~cost:replica_cost spec planning g o)
            .Heuristics.schedule
        in
        let bare =
          Schedule.with_checkpoints o.Heuristics.schedule
            (Array.make (Wfc_dag.Dag.n_tasks g) false)
        in
        let replica_only =
          Schedule.with_replicas bare
            (Heuristics.replication_counts ~cost:replica_cost spec planning g
               ~sched:bare)
        in
        (if Schedule.is_replicated mixed then
           [
             Robust.static ~replica_cost
               ~name:(static_name ^ "+" ^ tag)
               g mixed;
           ]
         else [])
        @
        if Schedule.is_replicated replica_only then
          [
            Robust.static ~replica_cost
              ~name:("replica-only " ^ tag)
              g replica_only;
          ]
        else []
  in
  let min_uptime = horizon *. Wfc_dag.Dag.total_weight g in
  let r =
    Robust.evaluate ~traces_per_scenario:traces ~seed ~min_uptime ~criterion
      ~scenarios candidates
  in
  Format.printf
    "adaptive selection: %s (%d tasks), planning %a, true MTBF %g s@.criterion \
     %s, %d scenarios x %d traces, seed %d@.@."
    (source_name ~load family) (Wfc_dag.Dag.n_tasks g) FM.pp planning true_mtbf
    (Robust.criterion_name criterion)
    (List.length scenarios) traces seed;
  let summary =
    Wfc_reporting.Table.create
      ~columns:
        [ "policy"; "mean"; Printf.sprintf "cvar@%g" r.Robust.alpha; "worst";
          "max regret"; "exhausted" ]
  in
  List.iter
    (fun s ->
      Wfc_reporting.Table.add_row summary
        [
          s.Robust.candidate;
          Printf.sprintf "%.1f" s.Robust.mean;
          Printf.sprintf "%.1f" s.Robust.cvar;
          Printf.sprintf "%.1f" s.Robust.worst;
          Printf.sprintf "%.1f" s.Robust.max_regret;
          string_of_int s.Robust.exhausted;
        ])
    r.Robust.scores;
  Wfc_reporting.Table.print summary;
  Format.printf "@.per-scenario mean makespan and regret:@.@.";
  let detail =
    Wfc_reporting.Table.create
      ~columns:[ "policy"; "scenario"; "mean"; "regret" ]
  in
  List.iter
    (fun s ->
      List.iter2
        (fun (scenario, mean) (_, regret) ->
          Wfc_reporting.Table.add_row detail
            [
              s.Robust.candidate; scenario;
              Printf.sprintf "%.1f" mean;
              Printf.sprintf "%.1f" regret;
            ])
        s.Robust.per_scenario s.Robust.regret)
    r.Robust.scores;
  Wfc_reporting.Table.print detail;
  let exhausted =
    List.fold_left (fun acc s -> acc + s.Robust.exhausted) 0 r.Robust.scores
  in
  if exhausted > 0 then
    Format.printf
      "@.warning: %d runs consumed past the recorded horizon (raise \
       --horizon)@."
      exhausted;
  Format.printf "@.selected: %s by %s@." r.Robust.winner.Robust.candidate
    (Robust.criterion_name criterion);
  match csv with
  | None -> ()
  | Some path ->
      let rows =
        List.concat_map
          (fun s ->
            List.map2
              (fun (scenario, mean) (_, regret) ->
                [
                  s.Robust.candidate; scenario;
                  Printf.sprintf "%.6g" mean;
                  Printf.sprintf "%.6g" regret;
                  Printf.sprintf "%.6g" s.Robust.mean;
                  Printf.sprintf "%.6g" s.Robust.cvar;
                  Printf.sprintf "%.6g" s.Robust.worst;
                ])
              s.Robust.per_scenario s.Robust.regret)
          r.Robust.scores
      in
      Wfc_reporting.Csv.write_file path
        ~header:
          [
            "policy"; "scenario"; "scenario_mean"; "regret"; "pooled_mean";
            "pooled_cvar"; "pooled_worst";
          ]
        ~rows;
      Format.printf "@.wrote %s@." path

let adapt_cmd =
  let true_mtbf_t =
    Arg.(value & opt (some (positive_float "true MTBF")) None
         & info [ "true-mtbf" ] ~docv:"SECONDS"
             ~doc:"The platform's actual MTBF, when the planning $(b,--mtbf) \
                   is misspecified (default: equal to $(b,--mtbf)).")
  in
  let trigger_t =
    Arg.(value & opt trigger_conv SA.Every_failure
         & info [ "trigger" ] ~docv:"TRIGGER"
             ~doc:"When the adaptive policy replans: $(b,every) failure, \
                   $(b,k:N) (every N-th failure) or $(b,drift:F) (estimated \
                   rate drifted by factor F from the planned one).")
  in
  let budget_t =
    Arg.(value & opt (positive_int "replan budget") 256
         & info [ "replan-budget" ]
             ~doc:"Candidate evaluations each replan may spend.")
  in
  let traces_t =
    Arg.(value & opt (positive_int "trace count") 50
         & info [ "traces" ] ~doc:"Recorded failure traces per scenario.")
  in
  let criterion_t =
    Arg.(value & opt criterion_conv (Robust.CVaR 0.95)
         & info [ "criterion" ] ~docv:"CRITERION"
             ~doc:"Selection criterion: $(b,mean), $(b,worst), $(b,cvar) \
                   (alpha 0.95) or $(b,cvar:Q).")
  in
  let horizon_t =
    Arg.(value & opt (positive_float "horizon multiplier") 200.
         & info [ "horizon" ] ~docv:"MULT"
             ~doc:"Record traces covering $(docv) times the workflow's total \
                   weight of uptime.")
  in
  let relinearize_t =
    Arg.(value & flag
         & info [ "relinearize" ]
             ~doc:"Let each replan also reorder the remaining tasks with the \
                   $(b,--linearization) strategy, keeping the better suffix.")
  in
  let csv_t =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Also dump every (policy, scenario) row as CSV to $(docv).")
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:"Score static vs adaptive execution on shared failure traces and \
             pick by risk-aware criterion")
    Term.(const adapt $ family_t $ n_t $ seed_t $ cost_t $ mtbf_t $ downtime_t
          $ lin_t $ ckpt_t $ grid_t $ engine_t $ load_t $ replicas_t
          $ replica_cost_t $ true_mtbf_t $ failures_t $ trigger_t $ budget_t
          $ traces_t $ criterion_t $ horizon_t $ relinearize_t $ csv_t
          $ metrics_t $ obs_trace_t)

(* ---- replay (record / replay failure traces) ---- *)

let kind_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "attempts" -> Ok `Attempts
    | "renewal" -> Ok `Renewal
    | _ ->
        Error
          (`Msg
            (Printf.sprintf "unknown trace kind %S (attempts or renewal)" s))
  in
  let print ppf k =
    Format.pp_print_string ppf
      (match k with `Attempts -> "attempts" | `Renewal -> "renewal")
  in
  Arg.conv (parse, print)

let replay family n seed cost mtbf downtime lin ckpt grid engine load
    failures_opt record input kind metrics trace =
  with_obs ~metrics ~trace @@ fun () ->
  let module Sim = Wfc_simulator.Sim in
  let g = workflow ~load family n seed cost in
  let m = model mtbf downtime in
  let o =
    Heuristics.run ~search:(search_of_grid grid) ~backend:engine m g ~lin ~ckpt
  in
  let sched = o.Heuristics.schedule in
  let describe verb t =
    Format.printf "%s %s trace: %d events, %d failures@." verb
      (Trace_io.kind_name t) (Trace_io.n_events t) (Trace_io.n_failures t)
  in
  let summary (run : Sim.run) =
    Format.printf "  makespan %.2f s, %d failures, %.2f s wasted@."
      run.Sim.makespan run.Sim.failures run.Sim.wasted
  in
  match (record, input) with
  | Some _, Some _ | None, None ->
      Printf.eprintf
        "wfc replay: exactly one of --record or --input is required\n";
      exit 124
  | Some path, None ->
      let rng = Wfc_platform.Rng.create seed in
      let run, t =
        match kind with
        | `Renewal ->
            let failures =
              Option.value failures_opt
                ~default:(Dist.exponential ~rate:m.FM.lambda)
            in
            Trace_io.record_renewal ~rng ~failures
              ~downtime:(Dist.constant downtime) g sched
        | `Attempts -> (
            match failures_opt with
            | None -> Trace_io.record_run ~rng m g sched
            | Some failures ->
                let rec_ = Trace_io.recorder () in
                let source =
                  Trace_io.recording_source rec_
                    (Sim.renewal_source ~rng ~failures
                       ~downtime:(Dist.constant downtime))
                in
                (Sim.run_with_source source g sched, Trace_io.recorded rec_))
      in
      Trace_io.save path t;
      describe "recorded" t;
      summary run;
      Format.printf "wrote %s@." path
  | None, Some path -> (
      match Trace_io.load path with
      | Error msg ->
          Printf.eprintf "cannot load %s: %s\n" path msg;
          exit 1
      | Ok t -> (
          describe "loaded" t;
          match Trace_io.replay t g sched with
          | run -> summary run
          | exception Trace_io.Divergence msg ->
              Printf.eprintf
                "replay diverged (schedule differs from the recorded one): %s\n"
                msg;
              exit 1))

let replay_cmd =
  let record_t =
    Arg.(value & opt (some string) None
         & info [ "record" ] ~docv:"FILE"
             ~doc:"Execute once and write the failure trace to $(docv) \
                   (JSONL, bit-exact hex floats).")
  in
  let input_t =
    Arg.(value & opt (some string) None
         & info [ "input" ] ~docv:"FILE"
             ~doc:"Replay the trace in $(docv) against the schedule instead \
                   of drawing fresh failures.")
  in
  let kind_t =
    Arg.(value & opt kind_conv `Renewal
         & info [ "kind" ] ~docv:"KIND"
             ~doc:"Trace kind to record: $(b,renewal) (raw uptime/downtime \
                   draws, replayable under any policy) or $(b,attempts) \
                   (per-attempt draws, bit-exact for the same schedule).")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Record a failure trace to disk, or replay one deterministically")
    Term.(const replay $ family_t $ n_t $ seed_t $ cost_t $ mtbf_t $ downtime_t
          $ lin_t $ ckpt_t $ grid_t $ engine_t $ load_t $ failures_t
          $ record_t $ input_t $ kind_t $ metrics_t $ obs_trace_t)

(* ---- profile (instrumented end-to-end workload) ---- *)

let profile family n seed cost mtbf downtime grid engine bnb_domains runs
    budget replicas replica_cost csv trace =
  let module Driver = Wfc_resilience.Solver_driver in
  let g = workflow ~load:None family n seed cost in
  let model = model mtbf downtime in
  Obs_metrics.set_enabled true;
  if trace <> None then Obs_trace.set_enabled true;
  let search = search_of_grid grid in
  (* stage 1: heuristic sweep, every checkpoint strategy on the DF order *)
  List.iter
    (fun ckpt ->
      ignore
        (Heuristics.run ~search ~backend:engine model g
           ~lin:Linearize.Depth_first ~ckpt))
    Heuristics.all_ckpt_strategies;
  (* stage 2: exact tier (branch and bound), degrading gracefully when the
     node budget runs out *)
  let order = Linearize.run Linearize.Depth_first g in
  let config =
    { Driver.default_config with Driver.max_nodes = budget; search;
      backend = engine; bnb_domains }
  in
  let d = Driver.solve ~config model g ~order in
  (* stage 3: refine the winner, then fault-inject it *)
  let ls =
    Local_search.improve ~max_evaluations:500 ~backend:engine model g
      d.Driver.schedule
  in
  let est =
    Wfc_simulator.Monte_carlo.estimate ~runs ~seed model g
      ls.Local_search.schedule
  in
  (* stage 4 (optional): replication policy on the refined schedule,
     fault-injected so the replica counters show up in the metric table *)
  let replicated =
    match replicas with
    | Replication.No_replication -> None
    | spec ->
        let rsched =
          Schedule.with_replicas ls.Local_search.schedule
            (Heuristics.replication_counts ~cost:replica_cost spec model g
               ~sched:ls.Local_search.schedule)
        in
        let est_r =
          Wfc_simulator.Monte_carlo.estimate ~replica_cost ~runs ~seed model g
            rsched
        in
        Some (spec, rsched, est_r)
  in
  Format.printf "profile: %s (%d tasks), %a@." (P.family_name family)
    (Wfc_dag.Dag.n_tasks g) FM.pp model;
  Format.printf "  driver tier %s (%s)@."
    (Driver.tier_name d.Driver.tier) d.Driver.reason;
  Format.printf "  E[makespan] %.2f s, simulated mean %.2f s (%d runs)@."
    ls.Local_search.makespan
    (Wfc_platform.Stats.mean est.Wfc_simulator.Monte_carlo.makespan)
    runs;
  (match replicated with
  | None -> ()
  | Some (spec, rsched, est_r) ->
      Format.printf
        "  replication %s: E[makespan] %.2f s, simulated mean %.2f s (%d \
         extra copies)@."
        (Replication.spec_name spec)
        (Evaluator.expected_makespan ~replica_cost model g rsched)
        (Wfc_platform.Stats.mean est_r.Wfc_simulator.Monte_carlo.makespan)
        (Schedule.extra_replicas rsched));
  Format.printf "@.";
  (match csv with
  | Some path ->
      Wfc_reporting.Csv.write_file path ~header:[ "metric"; "kind"; "value" ]
        ~rows:(metrics_rows ());
      Format.printf "wrote %s@." path
  | None -> print_metrics ());
  match trace with Some path -> write_trace path | None -> ()

let profile_cmd =
  let runs_t =
    Arg.(value & opt (positive_int "run count") 1000
         & info [ "runs" ] ~doc:"Monte Carlo runs for the simulation stage.")
  in
  let budget_t =
    Arg.(value & opt (positive_int "node budget") 200_000
         & info [ "exact-budget" ] ~docv:"NODES"
             ~doc:"Branch-and-bound node budget for the exact tier (the \
                   default covers Genome n=20 to optimality).")
  in
  let csv_t =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE"
             ~doc:"Write the metric table as CSV to $(docv) instead of \
                   printing it.")
  in
  let bnb_domains_t =
    Arg.(value & opt (positive_int "domain count") 1
         & info [ "bnb-domains" ] ~docv:"N"
             ~doc:"Explore the exact tier's branch-and-bound tree over this \
                   many parallel domains (flat engine only; the sequential \
                   engines ignore it).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run an instrumented end-to-end workload (heuristics, exact \
             search, local search, simulation) and report internal metrics")
    Term.(const profile $ family_t $ n_t $ seed_t $ cost_t $ mtbf_t
          $ downtime_t $ grid_t $ engine_t $ bnb_domains_t $ runs_t $ budget_t
          $ replicas_t $ replica_cost_t $ csv_t $ obs_trace_t)

(* ---- corpus ---- *)

module Corpus = Wfc_corpus.Corpus

(* --mtbf-ratios R,R,...: the relative scenario grid (MTBF as a multiple of
   each instance's total weight). Nonsense dies as a usage error, like
   --failures. *)
let ratios_conv =
  let parse s =
    if String.lowercase_ascii s = "none" then Ok []
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match float_of_string_opt (String.trim p) with
            | Some v when v > 0. && Float.is_finite v -> go (v :: acc) rest
            | _ ->
                Error
                  (`Msg
                    (Printf.sprintf
                       "invalid MTBF ratio %S: expected positive multiples \
                        of the total weight (e.g. 0.1,1,10) or 'none'"
                       p)))
      in
      go [] (String.split_on_char ',' s)
  in
  let print ppf rs =
    Format.pp_print_string ppf
      (String.concat "," (List.map (Printf.sprintf "%g") rs))
  in
  Arg.conv (parse, print)

let corpus dir ratios laws cost grid engine replicas replica_cost downtime
    exact_budget deadline exact_max_n domains seed json metrics trace =
  with_obs ~metrics ~trace (fun () ->
      let scenarios =
        List.map (fun r -> Corpus.Relative r) ratios
        @ List.map (fun d -> Corpus.Law d) laws
      in
      if scenarios = [] then begin
        Printf.eprintf
          "no failure scenarios: give --mtbf-ratios or --failures\n";
        exit 1
      end;
      match Corpus.load_dir ~cost dir with
      | Error msg ->
          Printf.eprintf "cannot read %s: %s\n" dir msg;
          exit 1
      | Ok (instances, skipped) ->
          if instances = [] then begin
            List.iter
              (fun (p, m) -> Printf.printf "skipped %s: %s\n" p m)
              skipped;
            Printf.eprintf "no loadable workflow files in %s\n" dir;
            exit 1
          end;
          let config =
            {
              Corpus.default_config with
              Corpus.scenarios;
              search = search_of_grid grid;
              backend = engine;
              replication = replicas;
              replica_cost;
              downtime;
              exact_budget;
              exact_deadline = deadline;
              exact_max_n;
              domains;
              seed;
            }
          in
          let report = Corpus.sweep ~config ~skipped instances in
          Corpus.print_report report;
          (match json with
          | None -> ()
          | Some path ->
              let oc = open_out path in
              Fun.protect
                ~finally:(fun () -> close_out oc)
                (fun () ->
                  output_string oc
                    (Wfc_io.Json.to_string (Corpus.to_json report));
                  output_char oc '\n');
              Format.printf "wrote %s@." path))

let corpus_cmd =
  let dir_t =
    Arg.(required & pos 0 (some dir) None
         & info [] ~docv:"DIR"
             ~doc:"Directory of workflow files. Every $(b,.dax), $(b,.xml) \
                   and $(b,.json) entry is ingested (Pegasus DAX, WfCommons \
                   or native JSON, sniffed from the contents); files that \
                   fail to decode are reported and skipped.")
  in
  let ratios_t =
    Arg.(value & opt ratios_conv [ 0.1; 1.; 10. ]
         & info [ "mtbf-ratios" ] ~docv:"R,R,..."
             ~doc:"Relative failure scenarios: one sweep column group per \
                   ratio, with MTBF = R times the instance's total weight \
                   (the paper's MTBF/W axis). $(b,none) disables the \
                   relative grid (combine with $(b,--failures)).")
  in
  let laws_t =
    Arg.(value & opt_all failures_conv []
         & info [ "failures" ] ~docv:"LAW"
             ~doc:"Absolute failure scenario from the shared law grammar \
                   ($(b,exp:RATE), $(b,weibull:SHAPE,SCALE), \
                   $(b,hyper:P,RATE1,RATE2), $(b,const:VALUE)); the \
                   analytic model uses the law's mean as the MTBF. \
                   Repeatable; appended after the relative grid.")
  in
  let budget_t =
    Arg.(value & opt (nonneg_int "node budget") 0
         & info [ "exact-budget" ] ~docv:"NODES"
             ~doc:"Branch-and-bound node budget for an extra exact column \
                   (graceful solver-driver tiers); 0 (default) disables it.")
  in
  let deadline_t =
    deadline_arg
      ~doc:"Wall-clock cap per exact attempt. Unset keeps the sweep \
            fully deterministic; setting it trades byte-stability \
            for bounded latency."
  in
  let exact_max_n_t =
    Arg.(value & opt (positive_int "task cap") 24
         & info [ "exact-max-n" ] ~docv:"N"
             ~doc:"Skip the exact column on instances with more than $(docv) \
                   tasks.")
  in
  let domains_t =
    Arg.(value & opt (positive_int "domain count") 1
         & info [ "domains" ] ~docv:"N"
             ~doc:"Spread the sweep over this many domains. Results are \
                   independent of the domain count.")
  in
  let json_t =
    Arg.(value & opt (some string) None
         & info [ "json" ] ~docv:"FILE"
             ~doc:"Also write the full report as deterministic JSON to \
                   $(docv).")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Sweep a directory of real workflow files (DAX, WfCommons, \
             native JSON) across failure scenarios and heuristics, \
             producing Figure-style ratio tables and an optional JSON \
             report")
    Term.(const corpus $ dir_t $ ratios_t $ laws_t $ cost_t $ grid_t
          $ engine_t $ replicas_t $ replica_cost_t $ downtime_t $ budget_t
          $ deadline_t $ exact_max_n_t $ domains_t $ seed_t $ json_t
          $ metrics_t $ obs_trace_t)

(* ---- serve / request ---- *)

module Srv = Wfc_serve.Server
module Cli = Wfc_serve.Client

let listen_of ~socket ~port =
  match socket with Some p -> Srv.Unix_sock p | None -> Srv.Tcp port

let serve port socket cache_size queue_depth workers domains timeout metrics
    trace =
  let config =
    { Srv.default_config with cache_size; queue_depth; workers; domains;
      timeout }
  in
  with_obs ~metrics ~trace @@ fun () ->
  match
    Srv.serve ~config
      ~ready:(fun addr -> Printf.printf "wfc serve: listening on %s\n%!" addr)
      (listen_of ~socket ~port)
  with
  | Ok () -> ()
  | Error msg ->
      Printf.eprintf "wfc serve: %s\n" msg;
      exit 1

let socket_t =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Listen on (or connect to) a Unix-domain socket at $(docv) \
                 instead of TCP. The path must not already exist when \
                 serving; it is removed on shutdown.")

let serve_cmd =
  let port_t =
    Arg.(value & opt port_conv 0
         & info [ "port" ] ~docv:"PORT"
             ~doc:"TCP port to bind on 127.0.0.1; 0 (default) picks a free \
                   port and reports it on stdout.")
  in
  let cache_size_t =
    Arg.(value & opt (nonneg_int "cache size") Srv.default_config.cache_size
         & info [ "cache-size" ] ~docv:"N"
             ~doc:"Warm evaluation engines kept in the LRU; 0 disables the \
                   cache. Responses are byte-identical either way — only \
                   latency changes.")
  in
  let queue_depth_t =
    Arg.(value & opt (positive_int "queue depth") Srv.default_config.queue_depth
         & info [ "queue-depth" ] ~docv:"N"
             ~doc:"Admission bound on outstanding compute requests; beyond \
                   it requests are refused with a structured $(b,busy) \
                   error instead of queueing unboundedly.")
  in
  let workers_t =
    Arg.(value & opt (positive_int "worker count") Srv.default_config.workers
         & info [ "workers" ] ~docv:"N"
             ~doc:"Worker domains draining the compute queue.")
  in
  let domains_t =
    Arg.(value & opt (positive_int "domain count") Srv.default_config.domains
         & info [ "domains" ] ~docv:"N"
             ~doc:"Parallelism handed to corpus sweeps inside the daemon. \
                   Never affects response bytes.")
  in
  let timeout_t =
    Arg.(value & opt (some (positive_float "timeout")) None
         & info [ "timeout" ] ~docv:"SECONDS"
             ~doc:"Per-request wall-clock watchdog: compute requests \
                   running longer than $(docv) are cooperatively cancelled \
                   and answer a structured $(b,timeout) error. Distinct \
                   from the deterministic $(b,deadline) tiering; responses \
                   that finish in time are byte-for-byte unaffected.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the scheduling daemon: solve / simulate / adapt / corpus \
             requests over a Unix or TCP socket, in a line-oriented text \
             mode or a length-prefixed binary protocol, with a warm-engine \
             LRU and bounded-queue admission control")
    Term.(const serve $ port_t $ socket_t $ cache_size_t $ queue_depth_t
          $ workers_t $ domains_t $ timeout_t $ metrics_t $ obs_trace_t)

let request port socket binary retry from_stdin words =
  let target =
    match (socket, port) with
    | Some p, _ -> Srv.Unix_sock p
    | None, Some p -> Srv.Tcp p
    | None, None ->
        Printf.eprintf "wfc request: need --socket PATH or --port PORT\n";
        exit 1
  in
  let lines =
    if from_stdin then In_channel.input_lines In_channel.stdin
    else if words = [] then []
    else [ String.concat " " words ]
  in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  if lines = [] then begin
    Printf.eprintf "wfc request: nothing to send\n";
    exit 1
  end;
  match Cli.connect ~retry target with
  | Error msg ->
      (* distinct exit code: scripts can tell "no daemon" from "daemon
         said no" *)
      Printf.eprintf "wfc request: %s\n" msg;
      exit 2
  | Ok fd ->
      let replies = Cli.exchange ~binary fd lines in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let failed = ref false and busy = ref false and timed_out = ref false in
      List.iter
        (fun (r : Cli.reply) ->
          match r.body with
          | Ok body -> List.iter print_endline body
          | Error detail ->
              failed := true;
              (match String.index_opt detail ' ' with
              | Some i -> (
                  match String.sub detail 0 i with
                  | "busy" -> busy := true
                  | "timeout" -> timed_out := true
                  | _ -> ())
              | None ->
                  if detail = "busy" then busy := true
                  else if detail = "timeout" then timed_out := true);
              Printf.printf "error: %s\n" detail)
        replies;
      (* timeout > busy > other: the most actionable failure wins *)
      if !timed_out then exit 4
      else if !busy then exit 3
      else if !failed then exit 1

let request_cmd =
  let port_t =
    Arg.(value & opt (some port_conv) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Connect to the daemon on 127.0.0.1:$(docv).")
  in
  let binary_t =
    Arg.(value & flag
         & info [ "binary" ]
             ~doc:"Use the length-prefixed binary codec instead of the text \
                   protocol. Rendered output is byte-identical to text mode.")
  in
  let retry_t =
    Arg.(value & opt (nonneg_float "retry budget") 5.
         & info [ "retry" ] ~docv:"SECONDS"
             ~doc:"Keep retrying a refused connection for up to $(docv) \
                   (the daemon may still be starting).")
  in
  let stdin_t =
    Arg.(value & flag
         & info [ "stdin" ]
             ~doc:"Read one request per line from standard input and \
                   pipeline them over a single connection; replies print \
                   in request order regardless of completion order.")
  in
  let words_t =
    Arg.(value & pos_all string []
         & info [] ~docv:"WORD"
             ~doc:"Request words, joined into one text-protocol line, e.g. \
                   $(b,wfc request --port P solve family=chain n=8).")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send requests to a running wfc serve daemon and print the \
             replies. Exit codes separate the failure modes: 2 when no \
             connection could be made, 3 when a reply was $(b,busy) \
             (refused at admission), 4 when a reply was $(b,timeout) (the \
             watchdog cancelled it mid-compute), 1 for any other error \
             reply.")
    Term.(const request $ port_t $ socket_t $ binary_t $ retry_t $ stdin_t
          $ words_t)

(* ---- chaos ---- *)

module Chaos = Wfc_serve.Chaos

let chaos port socket seeds seed_base spec =
  let target =
    match (socket, port) with
    | Some p, _ -> Srv.Unix_sock p
    | None, Some p -> Srv.Tcp p
    | None, None ->
        Printf.eprintf "wfc chaos: need --socket PATH or --port PORT\n";
        exit 1
  in
  (match spec with
  | Some s -> Printf.printf "chaos spec: %s\n" (Chaos.to_string s)
  | None -> ());
  let seed_list = List.init seeds (fun i -> seed_base + i) in
  let r = Chaos.soak ?spec ~target ~seeds:seed_list () in
  Printf.printf "chaos soak: %d runs (seed base %d)\n" r.Chaos.runs seed_base;
  Printf.printf "  completed   %d\n" r.Chaos.completed;
  Printf.printf "  structured  %d\n" r.Chaos.structured;
  Printf.printf "  torn        %d\n" r.Chaos.torn;
  Printf.printf "  mismatched  %d\n" r.Chaos.mismatched;
  let ok = r.Chaos.mismatched = 0 && r.Chaos.leaked = 0 && r.Chaos.alive in
  Printf.printf "invariants: mismatched=%d leaked=%d alive=%s\n"
    r.Chaos.mismatched r.Chaos.leaked
    (if r.Chaos.alive then "yes" else "no");
  if not ok then exit 1

let chaos_cmd =
  let port_t =
    Arg.(value & opt (some port_conv) None
         & info [ "port" ] ~docv:"PORT"
             ~doc:"Attack the daemon on 127.0.0.1:$(docv).")
  in
  let seeds_t =
    Arg.(value & opt (positive_int "seed count") 50
         & info [ "seeds" ] ~docv:"N"
             ~doc:"Number of seeded fault schedules to run (seeds \
                   $(b,base)..$(b,base+N-1); even seeds use the text \
                   protocol, odd seeds the binary codec).")
  in
  let seed_base_t =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"BASE"
             ~doc:"First seed of the soak; a failing run replays exactly \
                   from its seed.")
  in
  let spec_t =
    let parse s =
      match Chaos.of_string s with
      | Ok spec -> Ok spec
      | Error msg -> Error (`Msg ("chaos spec: " ^ msg))
    in
    let spec_conv =
      Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Chaos.to_string s))
    in
    Arg.(value & opt (some spec_conv) None
         & info [ "spec" ] ~docv:"SPEC"
             ~doc:"Inject this exact fault schedule on every run instead of \
                   deriving one per seed: comma-separated \
                   $(b,tear\\@K), $(b,reset\\@K), $(b,corrupt\\@K:MASK), \
                   $(b,delay:MS), $(b,trickle:N), or $(b,none).")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Soak a running wfc serve daemon through a fault-injecting \
             proxy: seeded, replayable schedules of torn frames, corrupted \
             bytes, delays and connection resets. Verifies the crash-only \
             invariants — completed replies byte-identical to a chaos-free \
             exchange, no hangs, daemon alive afterwards with zero warm \
             engines leaked — and exits 1 if any is violated.")
    Term.(const chaos $ port_t $ socket_t $ seeds_t $ seed_base_t $ spec_t)

let main_cmd =
  Cmd.group
    (Cmd.info "wfc" ~version:"1.0.0"
       ~doc:"Scheduling computational workflows on failure-prone platforms")
    [ generate_cmd; evaluate_cmd; schedule_cmd; simulate_cmd; solve_cmd;
      stress_cmd; adapt_cmd; replay_cmd; profile_cmd; corpus_cmd;
      serve_cmd; request_cmd; chaos_cmd ]

let () = exit (Cmd.eval main_cmd)
